//! Performance counters — the detailed counters the paper's §IV-D2
//! analysis reads from simulation ("we look into the detailed performance
//! counters obtained from simulation").

use crate::lifecycle::LifecycleDigest;
use serde::{Deserialize, Serialize};
use uncore::Hist;

/// Top-down CPI stack: every commit-slot cycle charged to exactly one
/// component, so `sum(components) == cycles * commit_width` holds by
/// construction (enforced per tick by the attributor in `core.rs`).
///
/// The taxonomy follows the top-down methodology the paper's §IV-D2
/// analysis applies informally: retired work first, then the dominant
/// reason each empty slot could not retire.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct CpiStack {
    /// Slots that retired a micro-op.
    pub retired: u64,
    /// Empty slots with an empty ROB: the frontend supplied nothing.
    pub frontend_starved: u64,
    /// Empty slots inside a mispredict-recovery window (flush until the
    /// first post-recovery commit).
    pub mispredict_recovery: u64,
    /// Empty slots waiting on a memory access at the ROB head (load/store
    /// in flight, or a store blocked on a full store buffer).
    pub memory_stall: u64,
    /// Rename blocked this cycle because the ROB was full.
    pub rob_full: u64,
    /// Rename blocked this cycle because an issue queue was full.
    pub iq_full: u64,
    /// Serializing work at the head: commit-time execution (CSR, system,
    /// atomics), exceptions, or a serializing-flush recovery window.
    pub serialization: u64,
    /// Anything else (execution latency, writeback contention, halt).
    pub other: u64,
}

impl CpiStack {
    /// Total attributed slots (`cycles * commit_width` when the identity
    /// holds).
    pub fn total(&self) -> u64 {
        self.components().iter().map(|(_, v)| v).sum()
    }

    /// All components with stable display names, stack order.
    pub fn components(&self) -> [(&'static str, u64); 8] {
        [
            ("retired", self.retired),
            ("frontend_starved", self.frontend_starved),
            ("mispredict_recovery", self.mispredict_recovery),
            ("memory_stall", self.memory_stall),
            ("rob_full", self.rob_full),
            ("iq_full", self.iq_full),
            ("serialization", self.serialization),
            ("other", self.other),
        ]
    }

    /// Component-wise saturating difference — the stack of a simulation
    /// *window* given the cumulative stacks at its two endpoints (the
    /// triage replay charges only the re-executed failure window).
    pub fn saturating_sub(&self, start: &CpiStack) -> CpiStack {
        CpiStack {
            retired: self.retired.saturating_sub(start.retired),
            frontend_starved: self.frontend_starved.saturating_sub(start.frontend_starved),
            mispredict_recovery: self
                .mispredict_recovery
                .saturating_sub(start.mispredict_recovery),
            memory_stall: self.memory_stall.saturating_sub(start.memory_stall),
            rob_full: self.rob_full.saturating_sub(start.rob_full),
            iq_full: self.iq_full.saturating_sub(start.iq_full),
            serialization: self.serialization.saturating_sub(start.serialization),
            other: self.other.saturating_sub(start.other),
        }
    }

    /// The largest non-retired component (name, slots).
    pub fn top_stall(&self) -> (&'static str, u64) {
        self.components()[1..]
            .iter()
            .max_by_key(|(_, v)| *v)
            .copied()
            .unwrap_or(("other", 0))
    }
}

/// Aggregated per-core performance counters.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct PerfCounters {
    /// Elapsed cycles.
    pub cycles: u64,
    /// Architecturally retired instructions (fused pairs count as two).
    pub instret: u64,
    /// Committed micro-ops (fused pairs count as one).
    pub uops: u64,
    /// Committed fused macro-ops.
    pub fused_pairs: u64,
    /// Committed conditional branches.
    pub branches: u64,
    /// Mispredicted conditional branches.
    pub branch_mispredicts: u64,
    /// Committed loads.
    pub loads: u64,
    /// Committed stores.
    pub stores: u64,
    /// Loads satisfied by store-to-load forwarding.
    pub load_forwards: u64,
    /// Pipeline flushes due to branch mispredicts.
    pub flushes_mispredict: u64,
    /// Pipeline flushes due to memory-order violations.
    pub flushes_violation: u64,
    /// Pipeline flushes after serializing (system) instructions.
    pub flushes_system: u64,
    /// Architectural exceptions taken.
    pub exceptions: u64,
    /// SC instructions that failed.
    pub sc_failures: u64,
    /// SC instructions that succeeded (decided at commit).
    pub sc_successes: u64,
    /// LR reservations killed by a remote hart's store (snoop).
    pub reservation_snoop_kills: u64,
    /// Committed stores drained from the store buffer into the hierarchy
    /// (plus atomic writes).
    pub sbuffer_drains: u64,
    /// Register moves eliminated at rename.
    pub moves_eliminated: u64,
    /// Cycles in which rename stalled because the ROB was full.
    pub rob_full_cycles: u64,
    /// Distribution over cycles of the number of ready-to-issue
    /// instructions in the ALU issue queues (Fig. 15); bucket 15 is
    /// ">= 15".
    pub ready_hist: [u64; 16],
    /// Instructions dispatched with the PUBS high-priority mark.
    pub high_priority_dispatched: u64,
    /// Total dispatched instructions.
    pub dispatched: u64,
    /// Top-down CPI stack (always on; a few adds per cycle).
    pub cpi: CpiStack,
    /// Per-instruction lifecycle digest (always on; a handful of adds
    /// per retired/squashed uop). Cross-checked against the CPI stack by
    /// [`LifecycleDigest::cross_check`].
    pub lifecycle: LifecycleDigest,
    /// Per-cycle ROB occupancy (telemetry-gated, like all Hists below).
    pub rob_occupancy: Hist,
    /// Per-cycle ALU issue-queue occupancy (both ALU queues summed).
    pub iq_alu_occupancy: Hist,
    /// Per-cycle load/store issue-queue occupancy.
    pub iq_ls_occupancy: Hist,
    /// Per-cycle committed-store-buffer occupancy.
    pub sbuffer_occupancy: Hist,
    /// Per-cycle L1D in-flight transaction (MSHR) occupancy.
    pub l1d_mshr_occupancy: Hist,
    /// Load-to-use latency: cycles from load issue to writeback.
    pub load_to_use: Hist,
}

impl PerfCounters {
    /// Instructions per cycle.
    pub fn ipc(&self) -> f64 {
        if self.cycles == 0 {
            0.0
        } else {
            self.instret as f64 / self.cycles as f64
        }
    }

    /// Branch mispredictions per kilo-instruction (the PUBS paper's
    /// selection metric).
    pub fn mpki(&self) -> f64 {
        if self.instret == 0 {
            0.0
        } else {
            1000.0 * self.branch_mispredicts as f64 / self.instret as f64
        }
    }

    /// Record a ready-count observation for the Fig. 15 histogram.
    pub fn record_ready(&mut self, ready: usize) {
        self.ready_hist[ready.min(15)] += 1;
    }

    /// Record `n` cycles of the same ready count in one update (bulk
    /// charge for skipped idle spans, where the count cannot change).
    pub fn record_ready_n(&mut self, ready: usize, n: u64) {
        self.ready_hist[ready.min(15)] += n;
    }

    /// Fraction of cycles in which more instructions were ready than the
    /// paper's two-wide issue could service (the §IV-D2 "12.8%" metric).
    pub fn frac_cycles_ready_gt(&self, k: usize) -> f64 {
        let total: u64 = self.ready_hist.iter().sum();
        if total == 0 {
            return 0.0;
        }
        let above: u64 = self.ready_hist[k + 1..].iter().sum();
        above as f64 / total as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ipc_and_mpki() {
        let mut p = PerfCounters::default();
        assert_eq!(p.ipc(), 0.0);
        p.cycles = 100;
        p.instret = 250;
        assert!((p.ipc() - 2.5).abs() < 1e-12);
        p.branch_mispredicts = 5;
        assert!((p.mpki() - 20.0).abs() < 1e-12);
    }

    #[test]
    fn cpi_stack_totals_and_top_stall() {
        let s = CpiStack {
            retired: 50,
            frontend_starved: 10,
            memory_stall: 30,
            iq_full: 5,
            other: 5,
            ..Default::default()
        };
        assert_eq!(s.total(), 100);
        assert_eq!(s.top_stall(), ("memory_stall", 30));
        assert_eq!(s.components()[0], ("retired", 50));
    }

    #[test]
    fn cpi_stack_window_difference() {
        let start = CpiStack {
            retired: 40,
            memory_stall: 10,
            ..Default::default()
        };
        let end = CpiStack {
            retired: 100,
            memory_stall: 25,
            frontend_starved: 7,
            ..Default::default()
        };
        let window = end.saturating_sub(&start);
        assert_eq!(window.retired, 60);
        assert_eq!(window.memory_stall, 15);
        assert_eq!(window.frontend_starved, 7);
        // Differences never underflow.
        assert_eq!(start.saturating_sub(&end).retired, 0);
    }

    #[test]
    fn ready_histogram() {
        let mut p = PerfCounters::default();
        p.record_ready(0);
        p.record_ready(2);
        p.record_ready(3);
        p.record_ready(99);
        assert_eq!(p.ready_hist[0], 1);
        assert_eq!(p.ready_hist[2], 1);
        assert_eq!(p.ready_hist[15], 1);
        // 2 of 4 observations exceed 2.
        assert!((p.frac_cycles_ready_gt(2) - 0.5).abs() < 1e-12);
    }
}
