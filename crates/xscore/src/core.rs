//! The cycle-level core pipeline: decoupled frontend, rename with move
//! elimination, distributed issue, out-of-order execution with full
//! misspeculation recovery, and in-order commit with probes.
//!
//! The model follows Fig. 10 of the paper at stage granularity. Stages
//! are evaluated back-to-front each cycle so results latch one cycle
//! later, and every speculative structure (RAT, RAS, global history, LQ/
//! SQ, issue queues) recovers precisely on redirects.

use crate::bpu::{cf_kind, Bpu, BranchPrediction};
use crate::config::{IssuePolicy, XsConfig};
use crate::issue::{ConfTable, DefTable, IssueQueue};
use crate::lifecycle::{Lifecycle, LifecycleRing, SquashCause, LIFECYCLE_RING_CAP};
use crate::lsu::{ForwardResult, Lsu};
use crate::perf::PerfCounters;
use crate::prf::{PReg, Prf, Rat};
use crate::rob::{Rob, RobState};
use crate::tlbs::{CoreMmu, MmuResult};
use crate::uop::{exec_fused, fuse, try_fuse, CommitEvent, CommitMem, SbufferDrainEvent, Uop};
use riscv_isa::csr::{CsrFile, Privilege};
use riscv_isa::exec::{branch_taken, int_compute, load_extend};
use riscv_isa::fpu::fp_execute;
use riscv_isa::mem::PhysMem;
use riscv_isa::mmu::AccessType;
use riscv_isa::op::{DecodedInst, FuClass, Op};
use riscv_isa::state::ArchState;
use riscv_isa::trap::{Exception, Trap};
use std::cmp::Reverse;
use std::collections::BinaryHeap;
use std::collections::VecDeque;
use uncore::{AccessKind, Completion, CoreReq, MemSystem};

/// UART transmit MMIO address (matches the NEMU REF device map).
pub const UART_TX: u64 = 0x1000_0000;
/// CLINT mtime MMIO address.
pub const MTIME: u64 = 0x0200_bff8;
/// LR/SC reservation granule.
pub const RESERVATION_GRANULE: u64 = 64;

/// A coherent view over the memory system for the PTW and fetch
/// translation: reads see the freshest committed data anywhere in the
/// hierarchy, but *not* the store buffer — the Fig. 3 window.
struct CoherentView<'a>(&'a mut MemSystem);

impl PhysMem for CoherentView<'_> {
    fn read(&mut self, addr: u64, buf: &mut [u8]) {
        let mut off = 0;
        while off < buf.len() {
            // saturating: `off` can never exceed `buf.len()` here, but an
            // end-of-segment straddle must clamp rather than wrap to a
            // huge span if the loop condition ever changes.
            let n = (8 - (addr + off as u64) % 8).min(buf.len().saturating_sub(off) as u64) as usize;
            let v = self.0.coherent_read(addr + off as u64, n as u64);
            buf[off..off + n].copy_from_slice(&v.to_le_bytes()[..n]);
            off += n;
        }
    }
    fn write(&mut self, addr: u64, buf: &[u8]) {
        // A/D-bit updates by the walker go straight to backing memory
        // (page-table lines are not kept dirty in caches by this model).
        self.0.backing_mut().write(addr, buf);
    }
}

#[derive(Debug, Clone)]
struct PreUop {
    pc: u64,
    inst: DecodedInst,
    pred: Option<BranchPrediction>,
    npc: u64,
    fault: Option<(Exception, u64)>,
    /// Cycle the instruction entered the ibuf (lifecycle fetch stamp).
    fetched_at: u64,
}

#[derive(Debug, Clone, Copy)]
struct FuInFlight {
    done_at: u64,
    seq: u64,
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum MemReqKind {
    Load { seq: u64 },
    SbufferDrain,
    AtomicLoad,
    AtomicStore,
}

/// Marks a request id as an instruction fetch (fetch ids are matched
/// against `pending_fetch` directly and never enter the data arena).
const FETCH_ID_FLAG: u64 = 1 << 55;

/// Upper bound on the number of distributed issue queues, sizing the
/// per-cycle selection buffer in [`Core::issue`].
const MAX_IQS: usize = 8;

#[derive(Debug, Clone, Copy)]
struct InflightSlot {
    gen: u64,
    kind: MemReqKind,
    live: bool,
}

/// Flat slot arena for in-flight data-side requests, replacing the old
/// `HashMap<u64, MemReqKind>`: O(1) insert/remove with no hashing on the
/// hot path, fully deterministic iteration order (slot index order), and
/// ids that encode `hart | generation | slot` so a completion for a
/// squashed-and-reused slot is recognized as stale by its generation.
#[derive(Debug, Clone, Default)]
struct InflightArena {
    slots: Vec<InflightSlot>,
    free: Vec<u16>,
    live: usize,
}

impl InflightArena {
    /// Generation bits sit between the slot (low 16) and the fetch flag
    /// (bit 55): 39 bits, wrapping after 2^39 reuses of one slot.
    const GEN_MASK: u64 = (1 << 39) - 1;

    fn insert(&mut self, hart: usize, kind: MemReqKind) -> u64 {
        let slot = match self.free.pop() {
            Some(s) => {
                let e = &mut self.slots[s as usize];
                e.gen = (e.gen + 1) & Self::GEN_MASK;
                e.kind = kind;
                e.live = true;
                s
            }
            None => {
                let s = self.slots.len();
                debug_assert!(s < u16::MAX as usize, "in-flight arena overflow");
                self.slots.push(InflightSlot {
                    gen: 0,
                    kind,
                    live: true,
                });
                s as u16
            }
        };
        self.live += 1;
        ((hart as u64) << 56) | (self.slots[slot as usize].gen << 16) | slot as u64
    }

    /// Remove and return the request behind `id`. `None` for fetch ids,
    /// stale generations (the slot was squashed and reused), and ids
    /// already removed — exactly the cases the old map lookup missed on.
    fn remove(&mut self, id: u64) -> Option<MemReqKind> {
        if id & FETCH_ID_FLAG != 0 {
            return None;
        }
        let slot = (id & 0xffff) as usize;
        let gen = (id >> 16) & Self::GEN_MASK;
        let e = self.slots.get_mut(slot)?;
        if !e.live || e.gen != gen {
            return None;
        }
        e.live = false;
        self.free.push(slot as u16);
        self.live -= 1;
        Some(e.kind)
    }

    /// Drop every live request for which `keep` returns false (flush
    /// paths). Iterates in slot order: deterministic by construction.
    fn retain(&mut self, mut keep: impl FnMut(&MemReqKind) -> bool) {
        for (i, e) in self.slots.iter_mut().enumerate() {
            if e.live && !keep(&e.kind) {
                e.live = false;
                self.free.push(i as u16);
                self.live -= 1;
            }
        }
    }

    fn len(&self) -> usize {
        self.live
    }
}

/// Min-heap of future cycles at which this core has scheduled work:
/// FU completions, load replays, deferred load deliveries, store-buffer
/// drain deadlines, and fetch-stall expiries. Entries may be stale
/// (already passed, or for squashed work) — an early wakeup just runs
/// one provable no-op tick, which is charged identically to a skipped
/// cycle, so correctness never depends on queue precision.
#[derive(Debug, Clone, Default)]
struct EventQueue(BinaryHeap<Reverse<u64>>);

impl EventQueue {
    fn push(&mut self, at: u64) {
        self.0.push(Reverse(at));
    }

    /// Earliest scheduled cycle strictly after `now`; entries at or
    /// before `now` are spent and dropped.
    fn next_after(&mut self, now: u64) -> Option<u64> {
        while let Some(&Reverse(at)) = self.0.peek() {
            if at > now {
                return Some(at);
            }
            self.0.pop();
        }
        None
    }
}

/// Why the pipeline is inside a flush-recovery window (set at the flush,
/// cleared at the first subsequent commit). Drives CPI-stack attribution.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum RecoveryKind {
    None,
    /// Branch-mispredict redirect.
    Mispredict,
    /// Serializing flush (system ops, exceptions, atomics).
    Serialize,
    /// Memory-order-violation replay.
    MemViolation,
}

/// The dominant idle cause the CPI attributor charges empty commit
/// slots to — one CPI-stack component per variant. Factored out of the
/// per-tick attributor so skipped idle spans charge through the exact
/// same decision chain.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum IdleCause {
    Other,
    Serialization,
    MispredictRecovery,
    MemoryStall,
    RobFull,
    IqFull,
    FrontendStarved,
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum CommitStall {
    None,
    /// Atomic waiting for the store buffer to drain.
    AtomicDrain,
    /// Atomic load (LR / AMO read) in flight at physical address `pa`.
    AtomicLoad { pa: u64 },
    /// AMO write computed but not yet accepted by the L1D.
    AtomicStorePending { old: u64, newv: u64, pa: u64, size: u64 },
    /// Atomic store (SC / AMO write) in flight; `old` is the loaded value.
    AtomicStore { old: u64, pa: u64, size: u64, newv: u64 },
}

/// Output of one core cycle.
#[derive(Debug, Default, Clone)]
pub struct CycleOutput {
    /// Instructions committed this cycle (probe events).
    pub commits: Vec<CommitEvent>,
    /// Stores that entered the cache hierarchy this cycle.
    pub drains: Vec<SbufferDrainEvent>,
    /// Atomic writes (`paddr`, `size`) that linearized this cycle: an SC
    /// that decided success or an AMO whose store value was computed.
    /// The system applies these to every *other* hart's reservation in
    /// the same cycle — a remote SC deciding any later must fail. The
    /// drain-completion snoop alone fires a full memory round-trip after
    /// the decision, leaving a window where two harts' SCs both succeed
    /// from the same loaded value (a lost update).
    pub res_kills: Vec<(u64, u64)>,
}

/// One XiangShan-style core.
#[derive(Debug, Clone)]
pub struct Core {
    /// Configuration.
    pub cfg: XsConfig,
    hart: usize,
    /// Control and status registers (architectural).
    pub csr: CsrFile,
    // Rename state.
    rat_int: Rat,
    rat_fp: Rat,
    arat_int: Rat,
    arat_fp: Rat,
    prf_int: Prf,
    prf_fp: Prf,
    rob: Rob,
    iqs: Vec<IssueQueue>,
    lsu: Lsu,
    /// The MMU (public for scenario tests).
    pub mmu: CoreMmu,
    /// The branch prediction unit.
    pub bpu: Bpu,
    // Frontend.
    fetch_pc: u64,
    fetch_stall_until: u64,
    fetch_fault_pending: bool,
    pending_fetch: Option<(u64, u64, u64)>, // (req id, va pc, epoch)
    partial_fetch: Option<(u64, u16)>,
    fetch_epoch: u64,
    ibuf: VecDeque<PreUop>,
    // Execution.
    fu_pipe: Vec<FuInFlight>,
    /// Earliest `done_at` in `fu_pipe`; lets [`Core::writeback`] skip
    /// scanning the pipe on cycles where nothing can complete.
    fu_pipe_min: u64,
    /// Reusable scratch for the due-this-cycle writeback batch.
    wb_scratch: Vec<FuInFlight>,
    mem_inflight: InflightArena,
    /// Fetch request id counter (data-side ids come from the arena).
    next_req: u64,
    replay_q: Vec<(u64, u64)>, // (retry_at, seq)
    /// Scheduled future work, for idle-cycle skipping (DESIGN §5g).
    events: EventQueue,
    /// Whether the tick in progress changed any core state. A tick that
    /// ends with this false is a provable no-op that repeats identically
    /// until the next scheduled event lands.
    tick_progress: bool,
    /// ALU ready count observed by the last `issue()` call, so skipped
    /// idle spans can bulk-replicate the Fig. 15 histogram sample.
    last_ready_alu: usize,
    // Atomics.
    reservation: Option<u64>,
    lr_cycle: u64,
    commit_stall: CommitStall,
    /// DiffTest hook: force the next SC to fail (models a timeout even
    /// when the timing window would not produce one).
    pub force_sc_fail: bool,
    // Architectural results.
    /// Exit code once halted (ebreak convention).
    pub halted: Option<u64>,
    /// UART output bytes.
    pub output: Vec<u8>,
    cycle: u64,
    /// Performance counters.
    pub perf: PerfCounters,
    pubs_conf: ConfTable,
    pubs_def: DefTable,
    instret: u64,
    deferred_loads: Vec<(u64, u64, u64)>, // (deliver_at, seq, value)
    deferred_commits: Vec<CommitEvent>,
    deferred_drains: Vec<SbufferDrainEvent>,
    // CPI-stack attribution state. The recovery window opens at a flush
    // and closes when the first post-flush instruction (seq beyond
    // `recovery_seq`) commits.
    recovery: RecoveryKind,
    recovery_seq: u64,
    rename_blocked_rob: bool,
    rename_blocked_iq: bool,
    // Lifecycle tracing: the last-N ring is always on; the full-trace
    // buffer only fills when `cfg.lifecycle` is set (drained by the
    // co-sim layer into ArchDB).
    life_ring: LifecycleRing,
    life_trace: Vec<Lifecycle>,
}

impl Core {
    /// Create a core resetting to `boot_pc`.
    pub fn new(cfg: XsConfig, hart: usize, boot_pc: u64) -> Self {
        let mut prf_int = Prf::new(cfg.int_prf);
        let mut prf_fp = Prf::new(cfg.fp_prf);
        let rat_int = prf_int.reset_rat();
        let rat_fp = prf_fp.reset_rat();
        let policy = cfg.issue_policy;
        let iqs = vec![
            IssueQueue::new(FuClass::Alu, cfg.iq_entries, cfg.alu_iq_width, policy),
            IssueQueue::new(FuClass::Alu, cfg.iq_entries, cfg.alu_iq_width, policy),
            IssueQueue::new(FuClass::Mdu, cfg.iq_entries, 1, policy),
            // Stores issue before loads within a cycle so a same-cycle
            // store/load pair forwards instead of racing.
            IssueQueue::new(FuClass::Store, cfg.iq_entries, cfg.store_units, policy),
            IssueQueue::new(FuClass::Load, cfg.iq_entries, cfg.load_units, policy),
            IssueQueue::new(FuClass::Fma, cfg.iq_entries, cfg.fma_units, policy),
            IssueQueue::new(FuClass::Fmisc, cfg.iq_entries, 1, policy),
        ];
        Core {
            hart,
            csr: CsrFile::new(hart as u64),
            rat_fp,
            arat_int: rat_int,
            arat_fp: rat_fp,
            rat_int,
            prf_int,
            prf_fp,
            rob: Rob::new(cfg.rob_entries),
            lsu: Lsu::new(cfg.lq_entries, cfg.sq_entries, cfg.sbuffer_entries),
            mmu: CoreMmu::new(
                cfg.itlb_entries,
                cfg.dtlb_entries,
                cfg.stlb_entries,
                3,
                cfg.ptw_level_latency,
            ),
            bpu: Bpu::new(
                cfg.ubtb_entries,
                cfg.btb_entries,
                cfg.tage_entries,
                cfg.ittage,
                cfg.ras_depth,
            ),
            iqs,
            fetch_pc: boot_pc,
            fetch_stall_until: 0,
            fetch_fault_pending: false,
            pending_fetch: None,
            partial_fetch: None,
            fetch_epoch: 0,
            ibuf: VecDeque::new(),
            fu_pipe: Vec::new(),
            fu_pipe_min: u64::MAX,
            wb_scratch: Vec::new(),
            mem_inflight: InflightArena::default(),
            next_req: 0,
            replay_q: Vec::new(),
            events: EventQueue::default(),
            tick_progress: false,
            last_ready_alu: 0,
            reservation: None,
            lr_cycle: 0,
            commit_stall: CommitStall::None,
            force_sc_fail: false,
            halted: None,
            output: Vec::new(),
            cycle: 0,
            perf: PerfCounters::default(),
            pubs_conf: ConfTable::new(1024, 3),
            pubs_def: DefTable::new(),
            instret: 0,
            deferred_loads: Vec::new(),
            deferred_commits: Vec::new(),
            deferred_drains: Vec::new(),
            recovery: RecoveryKind::None,
            recovery_seq: 0,
            rename_blocked_rob: false,
            rename_blocked_iq: false,
            life_ring: LifecycleRing::new(LIFECYCLE_RING_CAP),
            life_trace: Vec::new(),
            cfg,
        }
    }

    /// Snapshot of the always-on ring of the most recently finalized
    /// lifecycle records (retired and squashed), oldest first.
    pub fn lifecycle_ring(&self) -> Vec<Lifecycle> {
        self.life_ring.snapshot()
    }

    /// Drain the full-trace lifecycle records accumulated since the last
    /// call. Always empty unless `cfg.lifecycle` is enabled.
    pub fn take_lifecycle_trace(&mut self) -> Vec<Lifecycle> {
        std::mem::take(&mut self.life_trace)
    }

    /// Finalize a committed uop's lifecycle record. Stamps a stage never
    /// passed through individually (commit-time execution, eliminated
    /// moves) inherit the commit cycle so retired records stay monotone.
    fn finalize_retired(&mut self, e: &crate::rob::RobEntry) {
        let mut s = e.life;
        if s.fetched == 0 {
            s.fetched = s.renamed;
        }
        if s.decoded == 0 {
            s.decoded = s.fetched;
        }
        if s.issued == 0 {
            s.issued = self.cycle;
        }
        if s.executed == 0 {
            s.executed = self.cycle;
        }
        if s.writeback == 0 {
            s.writeback = self.cycle;
        }
        let rec = Lifecycle {
            hart: self.hart as u64,
            seq: e.seq,
            pc: e.uop.pc,
            inst: e.uop.inst.raw,
            fused: e.uop.fused.is_some(),
            mem: e.uop.inst.is_load() || e.uop.inst.is_store(),
            stamps: s,
            committed: self.cycle,
            squashed_at: 0,
            cause: None,
        };
        self.perf.lifecycle.observe_retired(&rec);
        self.life_ring.push(rec);
        if self.cfg.lifecycle {
            self.life_trace.push(rec);
        }
    }

    /// Finalize a squashed uop's lifecycle record (stamps are left as-is
    /// to show how far the uop got before the flush).
    fn finalize_squashed(&mut self, e: &crate::rob::RobEntry, cause: SquashCause) {
        let rec = Lifecycle {
            hart: self.hart as u64,
            seq: e.seq,
            pc: e.uop.pc,
            inst: e.uop.inst.raw,
            fused: e.uop.fused.is_some(),
            mem: e.uop.inst.is_load() || e.uop.inst.is_store(),
            stamps: e.life,
            committed: 0,
            squashed_at: self.cycle,
            cause: Some(cause),
        };
        self.perf.lifecycle.observe_squashed(&rec, cause);
        self.life_ring.push(rec);
        if self.cfg.lifecycle {
            self.life_trace.push(rec);
        }
    }

    /// True once the core executed the halt convention (ebreak).
    pub fn is_halted(&self) -> bool {
        self.halted.is_some()
    }

    /// Current cycle.
    pub fn cycle(&self) -> u64 {
        self.cycle
    }

    /// Retired instruction count.
    pub fn instret(&self) -> u64 {
        self.instret
    }

    fn req_id(&mut self, kind: MemReqKind) -> u64 {
        self.mem_inflight.insert(self.hart, kind)
    }

    // ------------------------------------------------------------------
    // Architectural state bridging (checkpoints, DiffTest).
    // ------------------------------------------------------------------

    /// Project the committed architectural state (the `f_Pi` mapping of
    /// paper §III-A).
    pub fn arch_state(&self) -> ArchState {
        let mut s = ArchState::new(self.next_commit_pc(), self.hart as u64);
        for i in 1..32 {
            s.gpr[i] = self.prf_int.read(self.arat_int[i]);
            s.fpr[i] = self.prf_fp.read(self.arat_fp[i]);
        }
        s.fpr[0] = self.prf_fp.read(self.arat_fp[0]);
        s.csr = self.csr.clone();
        s
    }

    /// PC of the next instruction to commit (fetch PC when idle).
    pub fn next_commit_pc(&self) -> u64 {
        self.rob.head().map(|e| e.uop.pc).unwrap_or(self.fetch_pc)
    }

    /// Restore architectural state (checkpoint restore / boot).
    pub fn restore_arch_state(&mut self, s: &ArchState) {
        assert!(self.rob.is_empty(), "restore only into an idle core");
        for i in 1..32 {
            let p = self.arat_int[i];
            self.prf_int.write(p, s.gpr[i]);
            let pf = self.arat_fp[i];
            self.prf_fp.write(pf, s.fpr[i]);
        }
        let pf0 = self.arat_fp[0];
        self.prf_fp.write(pf0, s.fpr[0]);
        self.csr = s.csr.clone();
        self.fetch_pc = s.pc;
        self.rat_int = self.arat_int;
        self.rat_fp = self.arat_fp;
        // A reservation acquired before the restore (e.g. by a replayed
        // LR on the pre-rollback path) must not give a post-restore SC a
        // stale success window.
        self.reservation = None;
        self.lr_cycle = 0;
        self.mmu.flush();
    }

    fn read_src(&self, fp: bool, p: PReg) -> u64 {
        if fp {
            self.prf_fp.read(p)
        } else {
            self.prf_int.read(p)
        }
    }

    fn src_ready(&self, fp: bool, p: PReg) -> bool {
        if fp {
            self.prf_fp.is_ready(p)
        } else {
            self.prf_int.is_ready(p)
        }
    }

    // ------------------------------------------------------------------
    // The cycle driver.
    // ------------------------------------------------------------------

    /// Advance one cycle.
    pub fn tick(&mut self, mem: &mut MemSystem, completions: &[Completion]) -> CycleOutput {
        let mut out = CycleOutput::default();
        self.tick_into(mem, completions, &mut out);
        out
    }

    /// Advance one cycle, writing the outputs into a caller-owned buffer
    /// (cleared first). Reusing one buffer across cycles keeps the hot
    /// loop free of per-cycle heap churn — the commit/drain vectors keep
    /// their steady-state capacity.
    pub fn tick_into(
        &mut self,
        mem: &mut MemSystem,
        completions: &[Completion],
        out: &mut CycleOutput,
    ) {
        out.commits.clear();
        out.drains.clear();
        out.res_kills.clear();
        self.cycle += 1;
        self.perf.cycles += 1;
        self.tick_progress = false;
        if self.is_halted() {
            // Keep the CPI identity over the whole run: a halted core's
            // commit slots all idle.
            self.perf.cpi.other += self.cfg.commit_width as u64;
            return;
        }
        if !completions.is_empty() {
            // Even a completion for squashed work consumed queue state.
            self.tick_progress = true;
        }
        self.rename_blocked_rob = false;
        self.rename_blocked_iq = false;
        self.handle_mem_completions(mem, completions, out);
        self.writeback();
        self.commit(mem, out);
        self.replay_loads(mem);
        self.issue(mem);
        self.rename_dispatch();
        self.fetch(mem);
        self.drain_sbuffer(mem);
        self.csr.mcycle = self.cycle;
        self.csr.time = self.cycle;
        out.commits.append(&mut self.deferred_commits);
        out.drains.append(&mut self.deferred_drains);
        self.attribute_cycle(mem, out.commits.len() as u64);
    }

    /// Top-down CPI attribution: charge exactly `commit_width` slots this
    /// cycle — one per retired event, the rest to the single dominant
    /// reason the commit stage idled — so
    /// `cpi.total() == cycles * commit_width` holds by construction.
    fn attribute_cycle(&mut self, mem: &MemSystem, committed: u64) {
        let width = self.cfg.commit_width as u64;
        if self.cfg.telemetry {
            self.record_occupancies(mem, 1);
        }
        let retired = committed.min(width);
        self.perf.cpi.retired += retired;
        let empty = width - retired;
        if empty == 0 {
            return;
        }
        let cause = self.idle_cause();
        *self.cause_slot(cause) += empty;
    }

    /// The single dominant reason the commit stage idles this cycle,
    /// most specific first. Pure: reads the same state whether evaluated
    /// on a live tick or over a skipped idle span (where that state is
    /// provably frozen).
    fn idle_cause(&self) -> IdleCause {
        if self.is_halted() {
            IdleCause::Other
        } else if self.commit_stall != CommitStall::None {
            // Atomic executing at the commit point.
            IdleCause::Serialization
        } else if self.recovery != RecoveryKind::None {
            match self.recovery {
                RecoveryKind::Mispredict => IdleCause::MispredictRecovery,
                RecoveryKind::MemViolation => IdleCause::MemoryStall,
                _ => IdleCause::Serialization,
            }
        } else if let Some(head) = self.rob.head() {
            if head.exception.is_some() || head.commit_exec {
                IdleCause::Serialization
            } else if head.state != RobState::Done && head.lq_idx.is_some() {
                // Load at the head still in flight.
                IdleCause::MemoryStall
            } else if head.state == RobState::Done
                && head.sq_idx.is_some()
                && self.lsu.sbuffer_full()
            {
                // Store ready but the store buffer is full.
                IdleCause::MemoryStall
            } else if head.state != RobState::Done {
                // Executing (ALU/FPU latency, issue wait).
                IdleCause::Other
            } else if self.rename_blocked_rob {
                IdleCause::RobFull
            } else if self.rename_blocked_iq {
                IdleCause::IqFull
            } else {
                IdleCause::Other
            }
        } else if self.rename_blocked_rob {
            IdleCause::RobFull
        } else if self.rename_blocked_iq {
            IdleCause::IqFull
        } else {
            // Empty ROB and rename had nothing: the frontend starved us.
            IdleCause::FrontendStarved
        }
    }

    fn cause_slot(&mut self, cause: IdleCause) -> &mut u64 {
        match cause {
            IdleCause::Other => &mut self.perf.cpi.other,
            IdleCause::Serialization => &mut self.perf.cpi.serialization,
            IdleCause::MispredictRecovery => &mut self.perf.cpi.mispredict_recovery,
            IdleCause::MemoryStall => &mut self.perf.cpi.memory_stall,
            IdleCause::RobFull => &mut self.perf.cpi.rob_full,
            IdleCause::IqFull => &mut self.perf.cpi.iq_full,
            IdleCause::FrontendStarved => &mut self.perf.cpi.frontend_starved,
        }
    }

    /// Record `n` cycles of occupancy telemetry at the current values.
    fn record_occupancies(&mut self, mem: &MemSystem, n: u64) {
        self.perf.rob_occupancy.record_n(self.rob.len() as u64, n);
        self.perf
            .iq_alu_occupancy
            .record_n((self.iqs[0].len() + self.iqs[1].len()) as u64, n);
        self.perf
            .iq_ls_occupancy
            .record_n((self.iqs[3].len() + self.iqs[4].len()) as u64, n);
        self.perf
            .sbuffer_occupancy
            .record_n(self.lsu.sbuffer.len() as u64, n);
        self.perf
            .l1d_mshr_occupancy
            .record_n(mem.l1d_active_txns(self.hart) as u64, n);
    }

    /// True when the tick just executed changed any core state. A false
    /// return proves the next ticks repeat identically until the next
    /// scheduled event (core or memory) lands.
    pub(crate) fn made_progress(&self) -> bool {
        self.tick_progress
    }

    /// The earliest future cycle at which this core has scheduled work.
    /// `None` for a halted core (nothing it schedules matters anymore)
    /// or when no work is queued. May be early (stale or squashed
    /// entries) but never late: every state transition that would end a
    /// no-op streak has an entry here or in the memory system's queues.
    pub(crate) fn next_event_cycle(&mut self) -> Option<u64> {
        if self.is_halted() {
            return None;
        }
        // Hot per-issue work deliberately never touches the event heap;
        // its completion times are folded in here from the flat state
        // the pipeline already maintains (this path only runs after a
        // provable no-op tick, so the scans are off the hot path).
        let mut next = self.events.next_after(self.cycle);
        let mut fold = |v: u64| match next {
            Some(n) if n <= v => {}
            _ => next = Some(v),
        };
        if !self.fu_pipe.is_empty() {
            fold(self.fu_pipe_min);
        }
        for &(at, _) in &self.replay_q {
            fold(at);
        }
        for &(at, _, _) in &self.deferred_loads {
            fold(at);
        }
        next
    }

    /// Bulk-charge `n` skipped cycles, reproducing exactly what `n`
    /// repeats of the preceding no-op tick would have recorded: cycle
    /// and CPI-stack totals (preserving `sum == cycles × width`), the
    /// Fig. 15 ready histogram, ROB-full stall cycles, occupancy
    /// telemetry at the frozen values, and the cycle CSRs. Only sound
    /// when that tick made no progress and no event lands in the span.
    pub(crate) fn charge_idle_cycles(&mut self, mem: &MemSystem, n: u64) {
        if n == 0 {
            return;
        }
        self.cycle += n;
        self.perf.cycles += n;
        let width = self.cfg.commit_width as u64;
        if self.is_halted() {
            // Mirror the halted tick: all slots idle, CSRs frozen.
            self.perf.cpi.other += width * n;
            return;
        }
        if self.rename_blocked_rob {
            self.perf.rob_full_cycles += n;
        }
        self.perf.record_ready_n(self.last_ready_alu, n);
        self.csr.mcycle = self.cycle;
        self.csr.time = self.cycle;
        if self.cfg.telemetry {
            self.record_occupancies(mem, n);
        }
        let cause = self.idle_cause();
        *self.cause_slot(cause) += width * n;
    }

    // ------------------------------------------------------------------
    // Memory completions.
    // ------------------------------------------------------------------

    fn handle_mem_completions(
        &mut self,
        mem: &mut MemSystem,
        completions: &[Completion],
        out: &mut CycleOutput,
    ) {
        for c in completions {
            // Fetch completions.
            if let Some((id, pc, epoch)) = self.pending_fetch {
                if c.req.id == id {
                    self.pending_fetch = None;
                    if epoch == self.fetch_epoch {
                        self.predecode(pc, c.fetch_block.expect("fetch block"));
                    }
                    continue;
                }
            }
            let Some(kind) = self.mem_inflight.remove(c.req.id) else {
                continue; // squashed request
            };
            match kind {
                MemReqKind::Load { seq } => {
                    if let Some(e) = self.rob.get(seq) {
                        let v = load_extend(e.uop.inst.op, c.data);
                        self.finish_load(seq, v);
                    }
                }
                MemReqKind::SbufferDrain => {
                    let head = self.lsu.sbuffer.front().expect("drain completes head");
                    self.perf.sbuffer_drains += 1;
                    out.drains.push(SbufferDrainEvent {
                        hart: self.hart,
                        paddr: head.paddr,
                        size: head.size,
                        data: head.data,
                        cycle: self.cycle,
                    });
                    self.lsu.pop_drained();
                }
                MemReqKind::AtomicLoad => {
                    let old = c.data;
                    self.atomic_loaded(mem, old, out);
                }
                MemReqKind::AtomicStore => {
                    if let CommitStall::AtomicStore { old, pa, size, newv } = self.commit_stall {
                        self.perf.sbuffer_drains += 1;
                        out.drains.push(SbufferDrainEvent {
                            hart: self.hart,
                            paddr: pa,
                            size,
                            data: newv,
                            cycle: self.cycle,
                        });
                        self.atomic_store_done(old);
                    }
                }
            }
        }
    }

    fn finish_load(&mut self, seq: u64, value: u64) {
        let Some(e) = self.rob.get_mut(seq) else {
            return;
        };
        e.wb_value = value;
        if let Some(m) = &mut e.mem_info {
            m.value = value;
        }
        e.state = RobState::Done;
        e.life.executed = self.cycle;
        e.life.writeback = self.cycle;
        let (fp, p) = (e.dest_fp, e.phys_rd);
        let has_dest = e.has_dest;
        let issued_at = e.issued_at;
        if let Some(li) = e.lq_idx {
            // li indexes by allocation order, but flushes shuffle the LQ;
            // find by seq instead.
            let _ = li;
        }
        if let Some(l) = self.lsu.lq.iter_mut().find(|l| l.seq == seq) {
            l.done = true;
        }
        if has_dest {
            if fp {
                self.prf_fp.write(p, value);
            } else {
                self.prf_int.write(p, value);
            }
        }
        if self.cfg.telemetry && issued_at > 0 {
            self.perf
                .load_to_use
                .record(self.cycle.saturating_sub(issued_at));
        }
    }

    // ------------------------------------------------------------------
    // Writeback + branch resolution.
    // ------------------------------------------------------------------

    fn writeback(&mut self) {
        // Nothing in flight completes before `fu_pipe_min`: skip the
        // scan (and the scratch churn) on cycles with nothing due.
        if self.fu_pipe.is_empty() || self.cycle < self.fu_pipe_min {
            return;
        }
        let cycle = self.cycle;
        let mut due = std::mem::take(&mut self.wb_scratch);
        due.clear();
        let mut min = u64::MAX;
        self.fu_pipe.retain(|f| {
            if f.done_at <= cycle {
                due.push(*f);
                false
            } else {
                min = min.min(f.done_at);
                true
            }
        });
        self.fu_pipe_min = min;
        if !due.is_empty() {
            self.tick_progress = true;
        }
        // Unique seqs: unstable sort is deterministic here.
        due.sort_unstable_by_key(|f| f.seq);
        for f in &due {
            if self.rob.get(f.seq).is_none() {
                continue; // squashed
            }
            self.execute_and_writeback(f.seq);
        }
        self.wb_scratch = due;
    }

    /// Compute the result of a (non-memory) uop and write it back.
    fn execute_and_writeback(&mut self, seq: u64) {
        let e = self.rob.get(seq).expect("entry exists");
        // Copy the plain-data fields instead of cloning the uop: the
        // clone would drag the branch prediction's RAS snapshot Vec
        // through the allocator on every writeback.
        let d = e.uop.inst;
        let fused = e.uop.fused;
        let pc = e.uop.pc;
        let predicted_npc = e.uop.predicted_npc;
        let fallthrough = e.uop.fallthrough();
        // Positional operand read: slot i holds operand i+1's mapping,
        // or None for x0 / unused (which read as zero). Compacting here
        // instead would hand `sltu rd, x0, rs2` its rs2 as operand one.
        let mut srcs = [0u64; 3];
        for (i, s) in e.phys_srcs.iter().enumerate() {
            if let Some((fp, p)) = s {
                srcs[i] = self.read_src(*fp, *p);
            }
        }
        let v = |i: usize| srcs[i];

        let mut value = 0u64;
        let mut fflags = 0u64;
        let mut taken = false;
        let mut target = 0u64;
        if let Some(b) = fused {
            value = exec_fused(&d, &b, v(0), v(1));
        } else if d.is_branch() {
            taken = branch_taken(d.op, v(0), v(1));
            target = pc.wrapping_add(d.imm as u64);
        } else if d.op == Op::Jal {
            taken = true;
            target = pc.wrapping_add(d.imm as u64);
            value = fallthrough;
        } else if d.op == Op::Jalr {
            taken = true;
            target = v(0).wrapping_add(d.imm as u64) & !1;
            value = fallthrough;
        } else if d.op == Op::Auipc {
            value = pc.wrapping_add(d.imm as u64);
        } else if d.op == Op::Lui {
            value = d.imm as u64;
        } else if let Some(r) = int_compute(
            d.op,
            v(0),
            if has_imm_operand(d.op) {
                d.imm as u64
            } else {
                v(1)
            },
        ) {
            value = r;
        } else {
            // Floating point through the host FPU.
            let rm = if d.rm == 7 { self.csr.frm() } else { d.rm };
            let r = fp_execute(d.op, v(0), v(1), v(2), rm);
            value = r.bits;
            fflags = r.flags;
        }
        if let Some(bug) = self.cfg.injected_bug {
            value = apply_injected_bug(bug, d.op, value);
        }

        let e = self.rob.get_mut(seq).expect("entry exists");
        e.wb_value = value;
        e.fflags = fflags;
        e.state = RobState::Done;
        e.life.executed = self.cycle;
        e.life.writeback = self.cycle;
        e.actual_taken = taken;
        e.actual_target = target;
        let (has_dest, fp, p) = (e.has_dest, e.dest_fp, e.phys_rd);
        if has_dest {
            if fp {
                self.prf_fp.write(p, value);
            } else {
                self.prf_int.write(p, value);
            }
        }
        // Branch resolution.
        if d.is_control_flow() {
            let actual_npc = if taken { target } else { fallthrough };
            if actual_npc != predicted_npc {
                self.resolve_mispredict(seq, actual_npc, taken, target);
            }
        }
    }

    fn resolve_mispredict(&mut self, seq: u64, actual_npc: u64, taken: bool, target: u64) {
        let e = self.rob.get_mut(seq).expect("branch entry");
        e.mispredicted = true;
        e.bpu_resolved = true;
        let uop = e.uop.clone();
        let snapshot = e.rat_snapshot.clone().expect("control flow has snapshot");
        if let Some(pred) = &uop.pred {
            self.bpu
                .resolve(uop.pc, &uop.inst, pred, taken, target, true);
        }
        self.perf.flushes_mispredict += 1;
        self.open_recovery(RecoveryKind::Mispredict, seq);
        self.flush_after(seq, actual_npc, &snapshot, SquashCause::Mispredict);
    }

    /// Open a CPI-attribution recovery window at a flush whose boundary
    /// (oldest surviving instruction) is `seq`.
    fn open_recovery(&mut self, kind: RecoveryKind, seq: u64) {
        self.recovery = kind;
        self.recovery_seq = seq;
    }

    /// Flush everything younger than `seq` and restart fetch at `new_pc`.
    fn flush_after(&mut self, seq: u64, new_pc: u64, snapshot: &(Rat, Rat), cause: SquashCause) {
        let flushed = self.rob.flush_after(seq);
        for e in &flushed {
            if e.has_dest {
                if e.dest_fp {
                    self.prf_fp.release(e.phys_rd);
                } else {
                    self.prf_int.release(e.phys_rd);
                }
            }
            self.finalize_squashed(e, cause);
        }
        self.rat_int = snapshot.0;
        self.rat_fp = snapshot.1;
        for iq in &mut self.iqs {
            iq.flush_after(seq);
        }
        self.fu_pipe.retain(|f| f.seq <= seq);
        self.mem_inflight
            .retain(|k| !matches!(k, MemReqKind::Load { seq: s } if *s > seq));
        self.replay_q.retain(|&(_, s)| s <= seq);
        self.lsu.flush_after(seq);
        self.redirect_fetch(new_pc, 2);
        self.pubs_def.clear();
    }

    /// Full pipeline flush (exceptions, serializing instructions).
    fn flush_all(&mut self, new_pc: u64, cause: SquashCause) {
        let flushed = self.rob.flush_all();
        for e in &flushed {
            if e.has_dest {
                if e.dest_fp {
                    self.prf_fp.release(e.phys_rd);
                } else {
                    self.prf_int.release(e.phys_rd);
                }
            }
            self.finalize_squashed(e, cause);
        }
        self.rat_int = self.arat_int;
        self.rat_fp = self.arat_fp;
        for iq in &mut self.iqs {
            iq.flush_all();
        }
        self.fu_pipe.clear();
        self.fu_pipe_min = u64::MAX;
        self.mem_inflight
            .retain(|k| !matches!(k, MemReqKind::Load { .. }));
        self.replay_q.clear();
        self.lsu.flush_all_speculative();
        self.redirect_fetch(new_pc, 3);
        self.pubs_def.clear();
    }

    fn redirect_fetch(&mut self, new_pc: u64, bubble: u64) {
        self.fetch_pc = new_pc;
        self.fetch_epoch += 1;
        self.pending_fetch = None;
        self.partial_fetch = None;
        self.ibuf.clear();
        self.fetch_fault_pending = false;
        self.fetch_stall_until = self.cycle + bubble;
        self.events.push(self.fetch_stall_until);
        self.tick_progress = true;
    }

    // ------------------------------------------------------------------
    // Commit.
    // ------------------------------------------------------------------

    fn commit(&mut self, mem: &mut MemSystem, out: &mut CycleOutput) {
        if self.commit_stall != CommitStall::None {
            self.advance_atomic(mem, out);
            return;
        }
        for slot in 0..self.cfg.commit_width {
            let Some(head) = self.rob.head() else { break };
            if head.replay_at_commit {
                // Memory-order violation: squash and re-execute from the
                // load itself.
                let pc = head.uop.pc;
                let seq = head.seq;
                self.perf.flushes_violation += 1;
                self.open_recovery(RecoveryKind::MemViolation, seq);
                self.flush_all(pc, SquashCause::MemOrderViolation);
                break;
            }
            if let Some((cause, tval)) = head.exception {
                if head.state == RobState::Done || head.commit_exec {
                    self.take_exception(cause, tval, out);
                }
                break;
            }
            if head.commit_exec {
                if slot != 0 {
                    break; // serialized: only at the first commit slot
                }
                self.commit_system(mem, out);
                break;
            }
            if head.state != RobState::Done {
                break;
            }
            // Stores need store-buffer space.
            if head.sq_idx.is_some() {
                let mmio = head.mem_info.map(|m| m.mmio).unwrap_or(false);
                if !mmio && self.lsu.sbuffer_full() {
                    break;
                }
            }
            let e = self.rob.pop_head().expect("head");
            self.retire(e, out);
        }
    }

    fn retire(&mut self, mut e: crate::rob::RobEntry, out: &mut CycleOutput) {
        let seq = e.seq;
        self.tick_progress = true;
        if self.recovery != RecoveryKind::None && seq > self.recovery_seq {
            self.recovery = RecoveryKind::None;
        }
        // Eliminated moves read their (shared) register at commit.
        if e.eliminated {
            e.wb_value = self.prf_int.read(e.phys_rd);
        }
        // Update the architectural RAT and free the old mapping.
        if let Some(dest) = e.uop.dest {
            let arat = if dest.fp {
                &mut self.arat_fp
            } else {
                &mut self.arat_int
            };
            arat[dest.idx as usize] = e.phys_rd;
            if e.dest_fp {
                self.prf_fp.release(e.old_phys);
            } else {
                self.prf_int.release(e.old_phys);
            }
        }
        // LSQ bookkeeping.
        if e.lq_idx.is_some() {
            self.lsu.commit_load(seq);
            self.perf.loads += 1;
        }
        if e.sq_idx.is_some() {
            self.perf.stores += 1;
            let mmio = e.mem_info.map(|m| m.mmio).unwrap_or(false);
            if mmio {
                // Device store at commit (UART).
                let m = e.mem_info.expect("mmio store has info");
                if m.paddr == UART_TX {
                    self.output.push(m.value as u8);
                }
                self.lsu.sq.retain(|s| s.seq != seq);
            } else {
                self.lsu
                    .commit_store(seq, self.cycle, self.cfg.sbuffer_drain_delay);
                self.events.push(self.cycle + self.cfg.sbuffer_drain_delay);
            }
        }
        // Branch training (at commit, if not already resolved).
        if e.uop.inst.is_control_flow() {
            if e.uop.inst.is_branch() {
                self.perf.branches += 1;
                if e.mispredicted {
                    self.perf.branch_mispredicts += 1;
                }
            }
            if !e.bpu_resolved {
                if let Some(pred) = &e.uop.pred {
                    self.bpu.resolve(
                        e.uop.pc,
                        &e.uop.inst,
                        pred,
                        e.actual_taken,
                        e.actual_target,
                        false,
                    );
                }
            }
            self.pubs_conf.update(e.uop.pc, e.mispredicted);
        }
        self.csr.set_fflags(e.fflags);
        let arch_count = 1 + e.uop.fused.is_some() as u64;
        if e.uop.fused.is_some() {
            self.perf.fused_pairs += 1;
        }
        self.instret += arch_count;
        self.perf.instret += arch_count;
        self.perf.uops += 1;
        self.csr.minstret = self.instret;
        out.commits.push(CommitEvent {
            hart: self.hart,
            pc: e.uop.pc,
            inst: e.uop.inst,
            fused: e.uop.fused,
            wb: e.uop.dest.map(|d| (d.fp, d.idx, e.wb_value)),
            mem: e.mem_info,
            trap: None,
            sc_failed: e.sc_failed,
            halted: false,
            cycle: self.cycle,
        });
        self.finalize_retired(&e);
    }

    fn take_exception(&mut self, cause: Exception, tval: u64, out: &mut CycleOutput) {
        let head = self.rob.head().expect("exception at head");
        let pc = head.uop.pc;
        let inst = head.uop.inst;
        let seq = head.seq;
        self.open_recovery(RecoveryKind::Serialize, seq);
        self.perf.exceptions += 1;
        let trap = Trap::Exception(cause, tval);
        let handler = self.csr.take_trap(trap, pc);
        out.commits.push(CommitEvent {
            hart: self.hart,
            pc,
            inst,
            fused: None,
            wb: None,
            mem: None,
            trap: Some(trap),
            sc_failed: false,
            halted: false,
            cycle: self.cycle,
        });
        self.flush_all(handler, SquashCause::Exception);
        self.perf.flushes_system += 1;
    }

    /// Execute a serializing instruction at the commit point.
    fn commit_system(&mut self, mem: &mut MemSystem, out: &mut CycleOutput) {
        let head = self.rob.head().expect("system at head");
        let seq = head.seq;
        let uop = head.uop.clone();
        let d = uop.inst;
        let srcs: Vec<u64> = head
            .phys_srcs
            .iter()
            .flatten()
            .map(|&(fp, p)| self.read_src(fp, p))
            .collect();
        // Atomics get their own multi-cycle path.
        if d.is_amo() || matches!(d.op, Op::LrW | Op::LrD | Op::ScW | Op::ScD) {
            // Sources must be ready (they are: producers committed, but
            // producers may still be in flight if younger commit widths
            // allowed... they cannot be: commit is in order).
            if !self.entry_ready_commit(seq) {
                return;
            }
            self.commit_stall = CommitStall::AtomicDrain;
            self.tick_progress = true;
            self.advance_atomic(mem, out);
            return;
        }
        if !self.entry_ready_commit(seq) {
            return; // CSR source operand still in flight
        }
        let next_pc = uop.fallthrough();
        let mut wb: Option<(bool, u8, u64)> = None;
        let mut redirect = next_pc;
        match d.op {
            Op::Csrrw | Op::Csrrs | Op::Csrrc | Op::Csrrwi | Op::Csrrsi | Op::Csrrci => {
                let csrno = d.csr();
                let src = if matches!(d.op, Op::Csrrwi | Op::Csrrsi | Op::Csrrci) {
                    d.rs1 as u64
                } else {
                    srcs.first().copied().unwrap_or(0)
                };
                match self.csr.read(csrno) {
                    Ok(old) => {
                        let newv = match d.op {
                            Op::Csrrw | Op::Csrrwi => Some(src),
                            Op::Csrrs | Op::Csrrsi => (src != 0).then_some(old | src),
                            _ => (src != 0).then_some(old & !src),
                        };
                        if let Some(v) = newv {
                            if let Err(ex) = self.csr.write(csrno, v) {
                                self.fault_head(ex, d.raw as u64, out);
                                return;
                            }
                            if csrno == riscv_isa::csr::addr::SATP {
                                self.mmu.flush();
                            }
                        }
                        if let Some(dest) = uop.dest {
                            self.write_dest_at_commit(seq, old);
                            wb = Some((dest.fp, dest.idx, old));
                        }
                    }
                    Err(ex) => {
                        self.fault_head(ex, d.raw as u64, out);
                        return;
                    }
                }
            }
            Op::Fence => {
                // Fence semantics: committed stores reach the memory
                // system before the fence retires.
                if !self.lsu.sbuffer_empty() {
                    return;
                }
            }
            Op::Wfi => {}
            Op::FenceI => {
                mem.flush_l1i(self.hart);
            }
            Op::SfenceVma => {
                if self.csr.privilege == Privilege::User
                    || (self.csr.privilege == Privilege::Supervisor
                        && self.csr.mstatus & riscv_isa::csr::mstatus::TVM != 0)
                {
                    self.fault_head(Exception::IllegalInstruction, d.raw as u64, out);
                    return;
                }
                self.mmu.flush();
            }
            Op::Mret => match self.csr.mret() {
                Ok(t) => redirect = t,
                Err(ex) => {
                    self.fault_head(ex, 0, out);
                    return;
                }
            },
            Op::Sret => match self.csr.sret() {
                Ok(t) => redirect = t,
                Err(ex) => {
                    self.fault_head(ex, 0, out);
                    return;
                }
            },
            Op::Ecall => {
                let cause = match self.csr.privilege {
                    Privilege::User => Exception::EcallFromU,
                    Privilege::Supervisor => Exception::EcallFromS,
                    Privilege::Machine => Exception::EcallFromM,
                };
                self.fault_head(cause, 0, out);
                return;
            }
            Op::Ebreak => {
                // Halt only once every committed store reached the memory
                // system (other harts may depend on them).
                if !self.lsu.sbuffer_empty() {
                    return;
                }
                let a0 = self.prf_int.read(self.arat_int[10]);
                self.halted = Some(a0);
                self.tick_progress = true;
                out.commits.push(CommitEvent {
                    hart: self.hart,
                    pc: uop.pc,
                    inst: d,
                    fused: None,
                    wb: None,
                    mem: None,
                    trap: None,
                    sc_failed: false,
                    halted: true,
                    cycle: self.cycle,
                });
                self.instret += 1;
                self.perf.instret += 1;
                self.perf.uops += 1;
                let e = self.rob.pop_head().expect("head");
                self.finalize_retired(&e);
                return;
            }
            other => panic!("unhandled commit-exec op {other:?}"),
        }
        // Retire the system op and flush younger (serialization).
        let mut e = self.rob.pop_head().expect("head");
        e.wb_value = wb.map(|w| w.2).unwrap_or(0);
        e.state = RobState::Done;
        if let Some(dest) = e.uop.dest {
            let arat = if dest.fp {
                &mut self.arat_fp
            } else {
                &mut self.arat_int
            };
            arat[dest.idx as usize] = e.phys_rd;
            self.prf_int.release(e.old_phys);
        }
        self.instret += 1;
        self.perf.instret += 1;
        self.perf.uops += 1;
        self.csr.minstret = self.instret;
        out.commits.push(CommitEvent {
            hart: self.hart,
            pc: e.uop.pc,
            inst: e.uop.inst,
            fused: None,
            wb,
            mem: None,
            trap: None,
            sc_failed: false,
            halted: false,
            cycle: self.cycle,
        });
        self.finalize_retired(&e);
        self.perf.flushes_system += 1;
        self.open_recovery(RecoveryKind::Serialize, seq);
        self.flush_all(redirect, SquashCause::Serialize);
    }

    /// Record an exception on the ROB head (taken next commit call).
    fn fault_head(&mut self, cause: Exception, tval: u64, out: &mut CycleOutput) {
        let seq = self.rob.head().expect("head").seq;
        if let Some(e) = self.rob.get_mut(seq) {
            e.exception = Some((cause, tval));
        }
        // Take it immediately (same cycle) for simplicity.
        self.take_exception(cause, tval, out);
    }

    fn entry_ready_commit(&self, seq: u64) -> bool {
        let e = self.rob.get(seq).expect("entry");
        e.phys_srcs
            .iter()
            .flatten()
            .all(|&(fp, p)| self.src_ready(fp, p))
    }

    fn write_dest_at_commit(&mut self, seq: u64, value: u64) {
        let e = self.rob.get_mut(seq).expect("entry");
        e.wb_value = value;
        let (fp, p, has) = (e.dest_fp, e.phys_rd, e.has_dest);
        if has {
            if fp {
                self.prf_fp.write(p, value);
            } else {
                self.prf_int.write(p, value);
            }
        }
    }

    // ------------------------------------------------------------------
    // Atomics at commit (LR/SC/AMO).
    // ------------------------------------------------------------------

    fn advance_atomic(&mut self, mem: &mut MemSystem, out: &mut CycleOutput) {
        let Some(head) = self.rob.head() else {
            self.commit_stall = CommitStall::None;
            self.tick_progress = true;
            return;
        };
        let seq = head.seq;
        let d = head.uop.inst;
        let addr = head
            .phys_srcs
            .first()
            .copied()
            .flatten()
            .map(|(fp, p)| self.read_src(fp, p))
            .unwrap_or(0);
        let size = d.mem_size();
        match self.commit_stall {
            CommitStall::AtomicDrain => {
                if !self.lsu.sbuffer_empty() {
                    return; // wait for committed stores to reach memory
                }
                // Past the drain everything below mutates state (fault,
                // SC resolution, or a submit attempt retried every tick).
                self.tick_progress = true;
                if addr % size != 0 {
                    self.commit_stall = CommitStall::None;
                    self.fault_head(Exception::StoreAddrMisaligned, addr, out);
                    return;
                }
                // Translate (bare mode in practice for atomics tests).
                let mut view = CoherentView(mem);
                let pa = match self.mmu.translate(
                    &mut view,
                    &self.csr,
                    addr,
                    if matches!(d.op, Op::LrW | Op::LrD) {
                        AccessType::Load
                    } else {
                        AccessType::Store
                    },
                ) {
                    MmuResult::Done { pa, .. } => pa,
                    MmuResult::Fault { cause, .. } => {
                        self.commit_stall = CommitStall::None;
                        self.fault_head(cause, addr, out);
                        return;
                    }
                };
                if matches!(d.op, Op::ScW | Op::ScD) {
                    // Decide success now.
                    let granule = pa & !(RESERVATION_GRANULE - 1);
                    let timeout = self.cycle.saturating_sub(self.lr_cycle)
                        > self.cfg.sc_timeout_cycles;
                    let success = !self.force_sc_fail
                        && !timeout
                        && self.reservation == Some(granule);
                    self.force_sc_fail = false;
                    self.reservation = None;
                    if success {
                        let data = head
                            .phys_srcs
                            .get(1)
                            .copied()
                            .flatten()
                            .map(|(fp, p)| self.read_src(fp, p))
                            .unwrap_or(0);
                        self.perf.sc_successes += 1;
                        // This decision is the linearization point: other
                        // harts' reservations on the granule must die NOW,
                        // not when the store completes in memory.
                        out.res_kills.push((pa, size));
                        self.commit_stall = CommitStall::AtomicStorePending {
                            old: 0,
                            newv: data,
                            pa,
                            size,
                        };
                        self.advance_atomic(mem, out);
                    } else {
                        // Failed SC: rd = 1, no store.
                        self.finish_atomic_inner(1, true, None);
                    }
                    return;
                }
                // LR / AMO: acquire the line exclusively and load.
                let id = self.req_id(MemReqKind::AtomicLoad);
                let req = CoreReq {
                    core: self.hart,
                    kind: AccessKind::LoadExclusive,
                    addr: pa,
                    size,
                    data: 0,
                    id,
                };
                if mem.submit_data(req) {
                    self.commit_stall = CommitStall::AtomicLoad { pa };
                    if matches!(d.op, Op::LrW | Op::LrD) {
                        self.reservation = Some(pa & !(RESERVATION_GRANULE - 1));
                        self.lr_cycle = self.cycle;
                    }
                } else {
                    self.mem_inflight.remove(id);
                }
            }
            CommitStall::AtomicStorePending { old, newv, pa, size } => {
                // A submit attempt every tick, successful or not.
                self.tick_progress = true;
                let id = self.req_id(MemReqKind::AtomicStore);
                let req = CoreReq {
                    core: self.hart,
                    kind: AccessKind::Store,
                    addr: pa,
                    size,
                    data: newv,
                    id,
                };
                if mem.submit_data(req) {
                    self.commit_stall = CommitStall::AtomicStore { old, pa, size, newv };
                } else {
                    self.mem_inflight.remove(id);
                }
            }
            CommitStall::AtomicLoad { .. } | CommitStall::AtomicStore { .. } => {
                // Waiting on a completion; handled in
                // handle_mem_completions via atomic_loaded/store_done.
            }
            CommitStall::None => {}
        }
        let _ = seq;
    }

    fn atomic_loaded(&mut self, mem: &mut MemSystem, raw: u64, out: &mut CycleOutput) {
        let CommitStall::AtomicLoad { pa } = self.commit_stall else {
            return;
        };
        let Some(head) = self.rob.head() else { return };
        let d = head.uop.inst;
        let old = load_extend(
            if d.mem_size() == 4 { Op::Lw } else { Op::Ld },
            raw,
        );
        if matches!(d.op, Op::LrW | Op::LrD) {
            // LR completes here.
            let mem_info = CommitMem {
                vaddr: pa,
                paddr: pa,
                size: d.mem_size(),
                is_store: false,
                value: old,
                mmio: false,
            };
            self.finish_atomic_inner(old, false, Some(mem_info));
            return;
        }
        // AMO: compute the new value and store it back in the same cycle
        // (the line is exclusive; the write is effectively atomic).
        let src = head
            .phys_srcs
            .get(1)
            .copied()
            .flatten()
            .map(|(fp, p)| self.read_src(fp, p))
            .unwrap_or(0);
        let newv = riscv_isa::exec::amo_compute(d.op, old, src);
        let size = d.mem_size();
        // The AMO's write linearizes here (the line is exclusive): kill
        // remote reservations on the granule this cycle.
        out.res_kills.push((pa, size));
        self.commit_stall = CommitStall::AtomicStorePending {
            old,
            newv,
            pa,
            size,
        };
        // Try immediately to minimize the exclusivity window.
        let id = self.req_id(MemReqKind::AtomicStore);
        let req = CoreReq {
            core: self.hart,
            kind: AccessKind::Store,
            addr: pa,
            size,
            data: newv,
            id,
        };
        if mem.submit_data(req) {
            self.commit_stall = CommitStall::AtomicStore { old, pa, size, newv };
        } else {
            self.mem_inflight.remove(id);
        }
    }

    fn atomic_store_done(&mut self, old: u64) {
        let mem_info = if let CommitStall::AtomicStore { pa, size, newv, .. } = self.commit_stall {
            Some(CommitMem {
                vaddr: pa,
                paddr: pa,
                size,
                is_store: true,
                value: newv,
                mmio: false,
            })
        } else {
            None
        };
        self.finish_atomic_inner(old, false, mem_info);
    }

    fn finish_atomic_inner(&mut self, value: u64, sc_failed: bool, mem_info: Option<CommitMem>) {
        self.commit_stall = CommitStall::None;
        let mut e = self.rob.pop_head().expect("atomic at head");
        e.wb_value = value;
        e.sc_failed = sc_failed;
        if sc_failed {
            self.perf.sc_failures += 1;
        }
        if let Some(dest) = e.uop.dest {
            let p = e.phys_rd;
            self.prf_int.write(p, value);
            self.arat_int[dest.idx as usize] = p;
            self.prf_int.release(e.old_phys);
        }
        self.instret += 1;
        self.perf.instret += 1;
        self.perf.uops += 1;
        self.csr.minstret = self.instret;
        self.deferred_commits.push(CommitEvent {
            hart: self.hart,
            pc: e.uop.pc,
            inst: e.uop.inst,
            fused: None,
            wb: e.uop.dest.map(|d| (d.fp, d.idx, value)),
            mem: mem_info,
            trap: None,
            sc_failed,
            halted: false,
            cycle: self.cycle,
        });
        self.finalize_retired(&e);
        // Serialize after atomics.
        self.perf.flushes_system += 1;
        self.open_recovery(RecoveryKind::Serialize, e.seq);
        self.flush_all(e.uop.fallthrough(), SquashCause::Serialize);
    }

    // ------------------------------------------------------------------
    // Issue + LSU pipelines.
    // ------------------------------------------------------------------

    fn issue(&mut self, mem: &mut MemSystem) {
        let mut ready_alu_total = 0usize;
        // Stack buffer for this cycle's selections (one slot per queue):
        // readiness comes from the entry's own renamed sources against
        // the PRF ready bitmaps, so selection never touches the ROB.
        let mut selected = [(FuClass::Alu, crate::issue::Picks::default()); MAX_IQS];
        let nq = self.iqs.len();
        debug_assert!(nq <= MAX_IQS);
        {
            let prf_int = &self.prf_int;
            let prf_fp = &self.prf_fp;
            let epoch = prf_int.epoch() + prf_fp.epoch();
            for (qi, q) in self.iqs.iter_mut().enumerate() {
                let (picked, ready) = q.select(epoch, |e| {
                    e.srcs.iter().flatten().all(|&(fp, p)| {
                        if fp {
                            prf_fp.is_ready(p)
                        } else {
                            prf_int.is_ready(p)
                        }
                    })
                });
                if q.class == FuClass::Alu {
                    ready_alu_total += ready;
                }
                selected[qi] = (q.class, picked);
            }
        }
        self.perf.record_ready(ready_alu_total);
        self.last_ready_alu = ready_alu_total;
        for (class, seqs) in &selected[..nq] {
            for seq in seqs.iter() {
                let Some(e) = self.rob.get_mut(seq) else { continue };
                debug_assert_eq!(e.state, RobState::Waiting, "stale IQ entry picked");
                self.tick_progress = true;
                e.state = RobState::Issued;
                e.life.issued = self.cycle;
                match class {
                    FuClass::Load => self.issue_load(mem, seq),
                    FuClass::Store => self.issue_store(mem, seq),
                    _ => {
                        let lat = fu_latency(*class, &self.rob.get(seq).expect("e").uop.inst);
                        let done_at = self.cycle + lat;
                        self.fu_pipe.push(FuInFlight { done_at, seq });
                        self.fu_pipe_min = self.fu_pipe_min.min(done_at);
                    }
                }
            }
        }
    }

    fn issue_load(&mut self, mem: &mut MemSystem, seq: u64) {
        if self.cfg.telemetry {
            let e = self.rob.get_mut(seq).expect("load entry");
            if e.issued_at == 0 {
                e.issued_at = self.cycle;
            }
        }
        let e = self.rob.get(seq).expect("load entry");
        let d = e.uop.inst;
        let va = e
            .phys_srcs
            .first()
            .copied()
            .flatten()
            .map(|(fp, p)| self.read_src(fp, p))
            .unwrap_or(0)
            .wrapping_add(d.imm as u64);
        let size = d.mem_size();
        // Translate.
        let mut view = CoherentView(mem);
        let (pa, tlat) = match self.mmu.translate(&mut view, &self.csr, va, AccessType::Load) {
            MmuResult::Done { pa, latency } => (pa, latency),
            MmuResult::Fault { cause, .. } => {
                let e = self.rob.get_mut(seq).expect("e");
                e.exception = Some((cause, va));
                e.state = RobState::Done;
                return;
            }
        };
        // Record in the LQ.
        if let Some(l) = self.lsu.lq.iter_mut().find(|l| l.seq == seq) {
            l.paddr = Some(pa);
            l.size = size;
        }
        let mem_info = CommitMem {
            vaddr: va,
            paddr: pa,
            size,
            is_store: false,
            value: 0,
            mmio: pa == MTIME || pa == UART_TX,
        };
        self.rob.get_mut(seq).expect("e").mem_info = Some(mem_info);
        // MMIO loads resolve functionally.
        if pa == MTIME {
            let v = self.csr.time;
            self.fu_finish_load_later(seq, v, 4 + tlat);
            return;
        }
        if pa == UART_TX {
            self.fu_finish_load_later(seq, 0, 4 + tlat);
            return;
        }
        // Store-to-load forwarding.
        match self.lsu.forward(seq, pa, size) {
            ForwardResult::Forward(raw) => {
                self.perf.load_forwards += 1;
                let v = load_extend(d.op, raw);
                self.fu_finish_load_later(seq, v, 2 + tlat);
            }
            ForwardResult::Stall => {
                let e = self.rob.get_mut(seq).expect("e");
                e.state = RobState::Waiting;
                e.life.replays += 1;
                self.replay_q.push((self.cycle + 4, seq));
            }
            ForwardResult::None => {
                // Line-crossing loads take a slow functional path.
                if uncore::line_of(pa) != uncore::line_of(pa + size - 1) {
                    let raw = mem.coherent_read(pa, size);
                    let v = load_extend(d.op, raw);
                    self.fu_finish_load_later(seq, v, 8 + tlat);
                    return;
                }
                let id = self.req_id(MemReqKind::Load { seq });
                let req = CoreReq {
                    core: self.hart,
                    kind: AccessKind::Load,
                    addr: pa,
                    size,
                    data: 0,
                    id,
                };
                if !mem.submit_data(req) {
                    self.mem_inflight.remove(id);
                    let e = self.rob.get_mut(seq).expect("e");
                    e.state = RobState::Waiting;
                    e.life.replays += 1;
                    self.replay_q.push((self.cycle + 2, seq));
                }
            }
        }
    }

    /// Finish a load after `lat` cycles with an already-known value.
    fn fu_finish_load_later(&mut self, seq: u64, value: u64, lat: u64) {
        // Store the value now; deliver at the right time via a small
        // deferred list.
        let at = self.cycle + lat.max(1);
        self.deferred_loads.push((at, seq, value));
    }

    fn issue_store(&mut self, mem: &mut MemSystem, seq: u64) {
        let e = self.rob.get(seq).expect("store entry");
        let d = e.uop.inst;
        let va = e
            .phys_srcs
            .first()
            .copied()
            .flatten()
            .map(|(fp, p)| self.read_src(fp, p))
            .unwrap_or(0)
            .wrapping_add(d.imm as u64);
        let data = e
            .phys_srcs
            .get(1)
            .copied()
            .flatten()
            .map(|(fp, p)| self.read_src(fp, p))
            .unwrap_or(0);
        let size = d.mem_size();
        let mut view = CoherentView(mem);
        let pa = match self.mmu.translate(&mut view, &self.csr, va, AccessType::Store) {
            MmuResult::Done { pa, .. } => pa,
            MmuResult::Fault { cause, .. } => {
                let e = self.rob.get_mut(seq).expect("e");
                e.exception = Some((cause, va));
                e.state = RobState::Done;
                return;
            }
        };
        let mmio = pa == UART_TX || pa == MTIME;
        if let Some(s) = self.lsu.sq.iter_mut().find(|s| s.seq == seq) {
            s.paddr = Some(pa);
            s.data = Some(data);
            s.size = size;
            s.mmio = mmio;
        }
        let e = self.rob.get_mut(seq).expect("e");
        e.mem_info = Some(CommitMem {
            vaddr: va,
            paddr: pa,
            size,
            is_store: true,
            value: data,
            mmio,
        });
        e.state = RobState::Done;
        e.life.executed = self.cycle;
        e.life.writeback = self.cycle;
        // Memory-order check: younger loads that already executed on an
        // overlapping address must replay.
        if let Some(viol) = self.lsu.order_violation(seq, pa, size) {
            if let Some(le) = self.rob.get_mut(viol) {
                le.replay_at_commit = true;
            }
        }
    }

    fn replay_loads(&mut self, mem: &mut MemSystem) {
        let due: Vec<u64> = {
            let cycle = self.cycle;
            let mut d = Vec::new();
            self.replay_q.retain(|&(at, seq)| {
                if at <= cycle {
                    d.push(seq);
                    false
                } else {
                    true
                }
            });
            d
        };
        if !due.is_empty() {
            self.tick_progress = true;
        }
        for seq in due {
            if self.rob.get(seq).is_none() {
                continue;
            }
            let e = self.rob.get_mut(seq).expect("e");
            e.state = RobState::Issued;
            e.life.issued = self.cycle;
            self.issue_load(mem, seq);
        }
        // Deliver deferred load values.
        let cycle = self.cycle;
        let mut ready = Vec::new();
        self.deferred_loads.retain(|&(at, seq, v)| {
            if at <= cycle {
                ready.push((seq, v));
                false
            } else {
                true
            }
        });
        if !ready.is_empty() {
            self.tick_progress = true;
        }
        for (seq, v) in ready {
            if self.rob.get(seq).is_some() {
                self.finish_load(seq, v);
            }
        }
        // Deliver deferred commit events is handled by tick's caller.
    }

    // ------------------------------------------------------------------
    // Rename/dispatch.
    // ------------------------------------------------------------------

    fn rename_dispatch(&mut self) {
        for _ in 0..self.cfg.decode_width {
            let Some(front) = self.ibuf.front() else { break };
            if self.rob.is_full() {
                self.perf.rob_full_cycles += 1;
                self.rename_blocked_rob = true;
                break;
            }
            // Fetch fault pseudo-op: becomes an exception-carrying entry.
            if let Some((cause, tval)) = front.fault {
                self.tick_progress = true;
                let pu = self.ibuf.pop_front().expect("front");
                let uop = Uop::new(pu.pc, pu.inst, None, pu.npc);
                let seq = self.rob.push(uop);
                let e = self.rob.get_mut(seq).expect("e");
                e.exception = Some((cause, tval));
                e.state = RobState::Done;
                e.life.fetched = pu.fetched_at;
                e.life.decoded = pu.fetched_at;
                e.life.renamed = self.cycle;
                e.life.dispatched = self.cycle;
                break;
            }
            // Try fusion with the next entry.
            let mut fused: Option<Uop> = None;
            if self.cfg.fusion && self.ibuf.len() >= 2 {
                let a = &self.ibuf[0];
                let b = &self.ibuf[1];
                if a.pred.is_none()
                    && b.pred.is_none()
                    && b.fault.is_none()
                    && b.pc == a.pc + a.inst.len as u64
                    && try_fuse(&a.inst, &b.inst)
                {
                    fused = Some(fuse(a.pc, a.inst, b.inst, b.npc));
                }
            }
            let (uop, fetched_at) = if let Some(f) = fused {
                let at = self.ibuf[0].fetched_at;
                self.ibuf.pop_front();
                self.ibuf.pop_front();
                (f, at)
            } else {
                let pu = self.ibuf.pop_front().expect("front");
                let at = pu.fetched_at;
                let u = Uop::new(pu.pc, pu.inst, pu.pred, pu.npc);
                (u, at)
            };
            if !self.try_rename_one(uop, fetched_at) {
                break;
            }
            self.tick_progress = true;
        }
    }

    /// Rename and dispatch one uop. Returns false when a structural
    /// hazard requires stalling (uop is pushed back to the ibuf).
    fn try_rename_one(&mut self, uop: Uop, fetched_at: u64) -> bool {
        let d = uop.inst;
        let is_load = d.is_load() && !matches!(d.op, Op::LrW | Op::LrD);
        let is_store = d.is_store() && !d.is_amo() && !matches!(d.op, Op::ScW | Op::ScD);
        let commit_exec = d.is_system()
            || d.is_amo()
            || matches!(d.op, Op::LrW | Op::LrD | Op::ScW | Op::ScD | Op::Illegal);
        // Structural checks.
        if is_load && self.lsu.lq_full() || is_store && self.lsu.sq_full() {
            self.push_back(uop, fetched_at);
            return false;
        }
        let class = d.fu_class();
        let qi = self.queue_for(class, &uop);
        if !commit_exec && self.iqs[qi].is_full() {
            self.rename_blocked_iq = true;
            self.push_back(uop, fetched_at);
            return false;
        }
        // Move elimination.
        let move_elim = self.cfg.move_elimination && uop.is_reg_move();
        let needs_alloc = uop.dest.is_some() && !move_elim;
        if needs_alloc {
            let fp = uop.dest.expect("dest").fp;
            let free = if fp {
                self.prf_fp.free_count()
            } else {
                self.prf_int.free_count()
            };
            if free == 0 {
                self.push_back(uop, fetched_at);
                return false;
            }
        }
        // Map sources.
        let mut phys_srcs: [Option<(bool, PReg)>; 3] = [None; 3];
        for (i, s) in uop.srcs.iter().enumerate() {
            if let Some(s) = s {
                let p = if s.fp {
                    self.rat_fp[s.idx as usize]
                } else {
                    self.rat_int[s.idx as usize]
                };
                phys_srcs[i] = Some((s.fp, p));
            }
        }
        let is_cf = d.is_control_flow();
        let pc = uop.pc;
        let dest = uop.dest;
        let fused = uop.fused.is_some();
        let move_src = move_elim.then(|| uop.move_src());
        let raw = d.raw;
        let seq = self.rob.push(uop);
        self.perf.dispatched += 1;
        let e = self.rob.get_mut(seq).expect("just pushed");
        e.phys_srcs = phys_srcs;
        e.commit_exec = commit_exec;
        let at = if fetched_at != 0 { fetched_at } else { self.cycle };
        e.life.fetched = at;
        e.life.decoded = at;
        e.life.renamed = self.cycle;
        e.life.dispatched = self.cycle;
        if d.op == Op::Illegal {
            e.exception = Some((Exception::IllegalInstruction, raw as u64));
            e.state = RobState::Done;
        }
        // Destination renaming.
        if let Some(dest) = dest {
            let old = if dest.fp {
                self.rat_fp[dest.idx as usize]
            } else {
                self.rat_int[dest.idx as usize]
            };
            if move_elim {
                let src = move_src.expect("move source");
                let shared = self.rat_int[src as usize];
                self.prf_int.addref(shared);
                self.rat_int[dest.idx as usize] = shared;
                let e = self.rob.get_mut(seq).expect("e");
                e.phys_rd = shared;
                e.old_phys = old;
                e.has_dest = true;
                e.dest_fp = false;
                e.eliminated = true;
                e.state = RobState::Done;
                self.perf.moves_eliminated += 1;
            } else {
                let p = if dest.fp {
                    self.prf_fp.alloc().expect("checked free")
                } else {
                    self.prf_int.alloc().expect("checked free")
                };
                if dest.fp {
                    self.rat_fp[dest.idx as usize] = p;
                } else {
                    self.rat_int[dest.idx as usize] = p;
                }
                let e = self.rob.get_mut(seq).expect("e");
                e.phys_rd = p;
                e.old_phys = old;
                e.has_dest = true;
                e.dest_fp = dest.fp;
            }
        }
        // Control-flow snapshot (after renaming own dest).
        if is_cf {
            let snap = Box::new((self.rat_int, self.rat_fp));
            self.rob.get_mut(seq).expect("e").rat_snapshot = Some(snap);
        }
        // LSQ allocation.
        if is_load {
            let li = self.lsu.alloc_load(seq, d.mem_size());
            self.rob.get_mut(seq).expect("e").lq_idx = Some(li);
        }
        if is_store {
            let si = self.lsu.alloc_store(seq, d.mem_size());
            self.rob.get_mut(seq).expect("e").sq_idx = Some(si);
        }
        // PUBS marking.
        let mut high_priority = false;
        if self.cfg.issue_policy == IssuePolicy::Pubs && is_cf && d.is_branch() {
            if self.pubs_conf.unconfident(pc) {
                high_priority = true;
                // Mark in-flight producers of the branch's operands.
                let producers: Vec<u64> = [d.rs1, d.rs2]
                    .iter()
                    .map(|&r| self.pubs_def.producer_of(r))
                    .filter(|&s| s != 0)
                    .collect();
                for pseq in producers {
                    if let Some(pe) = self.rob.get_mut(pseq) {
                        pe.high_priority = true;
                    }
                    for iq in &mut self.iqs {
                        iq.mark_high_priority(pseq);
                    }
                }
            }
        }
        if let Some(dest) = dest {
            if !dest.fp {
                self.pubs_def.define(dest.idx, seq);
            }
        }
        if high_priority {
            self.rob.get_mut(seq).expect("e").high_priority = true;
        }
        if high_priority {
            self.perf.high_priority_dispatched += 1;
        }
        // Dispatch.
        let eliminated = self.rob.get(seq).expect("e").eliminated;
        if !commit_exec && !eliminated {
            self.iqs[qi].dispatch(seq, high_priority, phys_srcs);
        }
        let _ = fused;
        true
    }

    fn push_back(&mut self, uop: Uop, fetched_at: u64) {
        // Re-split a fused uop is unnecessary: push a PreUop equivalent.
        let (a, b) = (uop.inst, uop.fused);
        if let Some(b) = b {
            self.ibuf.push_front(PreUop {
                pc: uop.pc + a.len as u64,
                inst: b,
                pred: None,
                npc: uop.predicted_npc,
                fault: None,
                fetched_at,
            });
        }
        self.ibuf.push_front(PreUop {
            pc: uop.pc,
            inst: a,
            pred: uop.pred,
            npc: if b.is_some() {
                uop.pc + a.len as u64
            } else {
                uop.predicted_npc
            },
            fault: None,
            fetched_at,
        });
    }

    fn queue_for(&self, class: FuClass, uop: &Uop) -> usize {
        match class {
            FuClass::Alu | FuClass::Bru => (uop.pc >> 2) as usize % 2,
            FuClass::Mdu => 2,
            FuClass::Store => 3,
            FuClass::Load => 4,
            FuClass::Fma => 5,
            FuClass::Fmisc => 6,
        }
    }

    // ------------------------------------------------------------------
    // Fetch + predecode.
    // ------------------------------------------------------------------

    fn fetch(&mut self, mem: &mut MemSystem) {
        if self.pending_fetch.is_some()
            || self.fetch_fault_pending
            || self.cycle < self.fetch_stall_until
            || self.ibuf.len() >= 48
        {
            return;
        }
        // Past the guards the MMU walk below can fill TLBs even when the
        // L1I later rejects the request, so this tick mutated state.
        self.tick_progress = true;
        let pc = self.fetch_pc;
        let mut view = CoherentView(mem);
        let pa = match self.mmu.translate(&mut view, &self.csr, pc, AccessType::Fetch) {
            MmuResult::Done { pa, latency } => {
                if latency > 0 {
                    self.fetch_stall_until = self.cycle + latency;
                    self.events.push(self.fetch_stall_until);
                }
                pa
            }
            MmuResult::Fault { cause, .. } => {
                self.ibuf.push_back(PreUop {
                    pc,
                    inst: DecodedInst::default(),
                    pred: None,
                    npc: pc,
                    fault: Some((cause, pc)),
                    fetched_at: self.cycle,
                });
                self.fetch_fault_pending = true;
                return;
            }
        };
        let block = pa & !31;
        let id = ((self.hart as u64) << 56) | FETCH_ID_FLAG | self.next_req;
        self.next_req += 1;
        if mem.submit_fetch(self.hart, block, id) {
            self.pending_fetch = Some((id, pc, self.fetch_epoch));
        }
    }

    fn predecode(&mut self, start_pc: u64, block: [u8; 32]) {
        let block_base = start_pc & !31;
        let mut pc = start_pc;
        let mut count = 0;
        // Combine with a previous partial 4-byte instruction.
        if let Some((ppc, low)) = self.partial_fetch.take() {
            let hi = u16::from_le_bytes([block[0], block[1]]) as u32;
            let raw = (hi << 16) | low as u32;
            let inst = riscv_isa::decode32(raw);
            if self.push_predecoded(ppc, inst) {
                return; // taken branch redirected fetch
            }
            pc = ppc + 4;
            count += 1;
        }
        while count < 8 && pc >= block_base && pc < block_base + 32 {
            let off = (pc - block_base) as usize;
            // pc is 2-byte aligned, so off <= 30 and off + 1 is in range.
            let low = u16::from_le_bytes([block[off], block[off + 1]]);
            let is32 = low & 3 == 3;
            if is32 && off + 4 > 32 {
                // Spans the block: save the low half.
                self.partial_fetch = Some((pc, low));
                self.fetch_pc = block_base + 32;
                return;
            }
            let inst = if is32 {
                let raw = u32::from_le_bytes([
                    block[off],
                    block[off + 1],
                    block[off + 2],
                    block[off + 3],
                ]);
                riscv_isa::decode32(raw)
            } else {
                riscv_isa::decode16(low)
            };
            let ilen = inst.len as u64;
            if self.push_predecoded(pc, inst) {
                return;
            }
            pc += ilen;
            count += 1;
        }
        self.fetch_pc = pc;
    }

    /// Push one predecoded instruction; returns true when a predicted-
    /// taken control flow redirected fetch (ending the block).
    fn push_predecoded(&mut self, pc: u64, inst: DecodedInst) -> bool {
        if cf_kind(&inst).is_some() {
            let pred = self.bpu.predict(pc, &inst);
            let npc = if pred.taken {
                pred.target
            } else {
                pc + inst.len as u64
            };
            let taken = pred.taken;
            let ubtb_hit = pred.ubtb_hit;
            self.ibuf.push_back(PreUop {
                pc,
                inst,
                pred: Some(pred),
                npc,
                fault: None,
                fetched_at: self.cycle,
            });
            if taken {
                self.fetch_pc = npc;
                if !ubtb_hit {
                    self.fetch_stall_until = self.cycle + 2;
                    self.events.push(self.fetch_stall_until);
                }
                return true;
            }
            false
        } else {
            self.ibuf.push_back(PreUop {
                pc,
                inst,
                pred: None,
                npc: pc + inst.len as u64,
                fault: None,
                fetched_at: self.cycle,
            });
            false
        }
    }

    // ------------------------------------------------------------------
    // Store buffer drain.
    // ------------------------------------------------------------------

    fn drain_sbuffer(&mut self, mem: &mut MemSystem) {
        let cycle = self.cycle;
        let Some(head) = self.lsu.sbuffer.front() else {
            return;
        };
        if head.issued || head.drain_at > cycle {
            return;
        }
        // A submit attempt (hit or rejected) counts as progress: MSHR
        // rejection statistics accrue per attempted cycle.
        self.tick_progress = true;
        let (paddr, size, data) = (head.paddr, head.size, head.data);
        let id = self.req_id(MemReqKind::SbufferDrain);
        let req = CoreReq {
            core: self.hart,
            kind: AccessKind::Store,
            addr: paddr,
            size,
            data,
            id,
        };
        if mem.submit_data(req) {
            self.lsu.sbuffer.front_mut().expect("head").issued = true;
        } else {
            self.mem_inflight.remove(id);
        }
    }
}

impl Core {
    /// Fault injection for verification demos (the paper's artifact
    /// "intentionally injects a fault into XiangShan"): XOR a mask into
    /// the current architectural value of an integer register. The next
    /// consumer commits a wrong value, which DiffTest must catch.
    pub fn inject_fault_gpr(&mut self, reg: u8, xor_mask: u64) {
        if reg == 0 {
            return;
        }
        let p = self.rat_int[reg as usize];
        let v = self.prf_int.read(p);
        self.prf_int.write(p, v ^ xor_mask);
        let ap = self.arat_int[reg as usize];
        if ap != p {
            let av = self.prf_int.read(ap);
            self.prf_int.write(ap, av ^ xor_mask);
        }
    }

    /// Diagnostic view of the ROB head and pipeline state.
    pub fn debug_head(&self) -> String {
        let head = self.rob.head().map(|e| {
            format!(
                "seq {} pc {:#x} {:?} state {:?} lq {:?} sq {:?} replay {}",
                e.seq, e.uop.pc, e.uop.inst.op, e.state, e.lq_idx, e.sq_idx, e.replay_at_commit
            )
        });
        format!(
            "head={head:?} rob={} iqs={:?} fu={} inflight={} replayq={} stall={:?} sbuf={} ibuf={} pend_fetch={}",
            self.rob.len(),
            self.iqs.iter().map(|q| q.len()).collect::<Vec<_>>(),
            self.fu_pipe.len(),
            self.mem_inflight.len(),
            self.replay_q.len(),
            self.commit_stall,
            self.lsu.sbuffer.len(),
            self.ibuf.len(),
            self.pending_fetch.is_some(),
        )
    }

    /// Observe another hart's store entering the shared memory (clears a
    /// matching LR reservation, like a remote write invalidating the
    /// reservation set).
    pub fn snoop_remote_store(&mut self, paddr: u64, size: u64) {
        if let Some(g) = self.reservation {
            let start = paddr & !(RESERVATION_GRANULE - 1);
            let end = (paddr + size - 1) & !(RESERVATION_GRANULE - 1);
            if g == start || g == end {
                self.reservation = None;
                self.perf.reservation_snoop_kills += 1;
            }
        }
    }
}

/// Corrupt a writeback value according to an armed [`InjectedBug`].
fn apply_injected_bug(bug: crate::config::InjectedBug, op: Op, value: u64) -> u64 {
    use crate::config::InjectedBug::*;
    match bug {
        MulLowBit if op == Op::Mul => value ^ 1,
        AddwNoSext if op == Op::Addw => value & 0xffff_ffff,
        _ => value,
    }
}

#[inline]
fn has_imm_operand(op: Op) -> bool {
    use Op::*;
    matches!(
        op,
        Addi | Slti | Sltiu | Xori | Ori | Andi | Slli | Srli | Srai | Addiw | Slliw | Srliw
            | Sraiw | Rori | Roriw | SlliUw
    )
}

fn fu_latency(class: FuClass, d: &DecodedInst) -> u64 {
    use Op::*;
    match class {
        FuClass::Alu | FuClass::Bru => 1,
        FuClass::Mdu => match d.op {
            Mul | Mulh | Mulhsu | Mulhu | Mulw => 3,
            _ => 20, // divide
        },
        FuClass::Fma => 5, // cascade FMA (paper §IV-A)
        FuClass::Fmisc => match d.op {
            FdivS | FdivD => 12,
            FsqrtS | FsqrtD => 14,
            _ => 3,
        },
        FuClass::Load | FuClass::Store => 1,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::XsConfig;
    use riscv_isa::mem::{PhysMem, SparseMemory};
    use riscv_isa::state::ArchState;

    #[test]
    fn coherent_view_read_straddles_to_the_last_mapped_byte() {
        let cfg = XsConfig::nh();
        let base = 0x8000_0000u64;
        let mut backing = SparseMemory::new();
        let pat: Vec<u8> = (0u8..16).collect();
        backing.write(base, &pat);
        let mut mem = MemSystem::new(cfg.mem_system_config(), cfg.memory.build(), backing);
        let mut view = CoherentView(&mut mem);
        // Straddle the 8-byte boundary with a tail chunk shorter than the
        // alignment span: the span math must clamp to the buffer end, not
        // run past it.
        let mut mid = [0u8; 5];
        view.read(base + 6, &mut mid);
        assert_eq!(mid, [6, 7, 8, 9, 10]);
        // A straddling read ending exactly on the last mapped byte.
        let mut tail = [0u8; 9];
        view.read(base + 7, &mut tail);
        assert_eq!(tail, [7, 8, 9, 10, 11, 12, 13, 14, 15]);
        // Write path round-trips through backing memory.
        view.write(base + 6, &[0xaa, 0xbb, 0xcc]);
        let mut back = [0u8; 3];
        view.read(base + 6, &mut back);
        assert_eq!(back, [0xaa, 0xbb, 0xcc]);
    }

    #[test]
    fn restore_arch_state_invalidates_lr_reservation() {
        // A reservation acquired on the pre-rollback path (a replayed or
        // squashed LR) must not give a post-restore SC a stale success
        // window.
        let boot = 0x8000_0000u64;
        let mut core = Core::new(XsConfig::nh(), 0, boot);
        core.reservation = Some(0x8002_0000 & !(RESERVATION_GRANULE - 1));
        core.lr_cycle = 42;
        core.restore_arch_state(&ArchState::new(boot, 0));
        assert_eq!(core.reservation, None, "stale LR reservation survived restore");
        assert_eq!(core.lr_cycle, 0, "stale LR timestamp survived restore");
    }

    #[test]
    fn inflight_arena_rejects_stale_and_fetch_ids() {
        let mut a = InflightArena::default();
        let id0 = a.insert(1, MemReqKind::Load { seq: 7 });
        assert_eq!(id0 >> 56, 1, "hart tag in the top byte");
        assert_eq!(a.remove(id0), Some(MemReqKind::Load { seq: 7 }));
        assert_eq!(a.remove(id0), None, "double completion ignored");
        // The slot is reused with a bumped generation: the old id is
        // recognized as stale instead of matching the new request.
        let id1 = a.insert(1, MemReqKind::SbufferDrain);
        assert_eq!(id0 & 0xffff, id1 & 0xffff, "slot reused");
        assert_ne!(id0, id1, "generation distinguishes reuse");
        assert_eq!(a.remove(id0), None, "stale generation ignored");
        assert_eq!(a.remove(id1), Some(MemReqKind::SbufferDrain));
        assert_eq!(a.len(), 0);
        // Fetch ids never enter the arena.
        assert_eq!(a.remove(FETCH_ID_FLAG | 3), None);
    }

    #[test]
    fn inflight_arena_retain_flushes_in_slot_order() {
        let mut a = InflightArena::default();
        let keep = a.insert(0, MemReqKind::Load { seq: 3 });
        let drop1 = a.insert(0, MemReqKind::Load { seq: 9 });
        let drain = a.insert(0, MemReqKind::SbufferDrain);
        a.retain(|k| !matches!(k, MemReqKind::Load { seq } if *seq > 5));
        assert_eq!(a.len(), 2);
        assert_eq!(a.remove(drop1), None, "flushed entry gone");
        assert_eq!(a.remove(keep), Some(MemReqKind::Load { seq: 3 }));
        assert_eq!(a.remove(drain), Some(MemReqKind::SbufferDrain));
    }

    #[test]
    fn event_queue_skips_spent_entries() {
        let mut q = EventQueue::default();
        q.push(10);
        q.push(4);
        q.push(10);
        q.push(25);
        assert_eq!(q.next_after(10), Some(25), "entries at or before now are spent");
        assert_eq!(q.next_after(24), Some(25), "future entry is peeked, not consumed");
        assert_eq!(q.next_after(25), None);
        assert_eq!(q.next_after(0), None, "queue drained");
    }
}
