//! The composite branch prediction unit: micro-BTB, main BTB, TAGE-SC,
//! ITTAGE (NH only), and the return address stack.
//!
//! The BPU runs decoupled from the IFU (paper §IV-A): it produces fetch
//! targets ahead of fetch. Direction comes from TAGE-SC, return targets
//! from the RAS, indirect targets from ITTAGE (falling back to the BTB),
//! and the micro-BTB's only job is to make taken redirects zero-bubble
//! when it hits.

use crate::tage::{TagePred, TageSc};
use riscv_isa::op::{DecodedInst, Op};

/// The kind of control transfer at the end of a predicted block.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CfKind {
    /// Conditional branch.
    Branch,
    /// Direct jump (jal), not a call.
    Jump,
    /// Function call (jal/jalr with rd == ra).
    Call,
    /// Function return (jalr ra).
    Ret,
    /// Other indirect jump.
    Indirect,
}

/// Classify a control-flow instruction.
pub fn cf_kind(d: &DecodedInst) -> Option<CfKind> {
    match d.op {
        Op::Beq | Op::Bne | Op::Blt | Op::Bge | Op::Bltu | Op::Bgeu => Some(CfKind::Branch),
        Op::Jal => Some(if d.rd == 1 { CfKind::Call } else { CfKind::Jump }),
        Op::Jalr => Some(if d.rd == 1 {
            CfKind::Call
        } else if d.rs1 == 1 && d.rd == 0 {
            CfKind::Ret
        } else {
            CfKind::Indirect
        }),
        _ => None,
    }
}

/// Prediction for one control-flow instruction.
#[derive(Debug, Clone, PartialEq)]
pub struct BranchPrediction {
    /// Predicted taken (always true for jumps).
    pub taken: bool,
    /// Predicted target when taken.
    pub target: u64,
    /// TAGE metadata (conditional branches only).
    pub tage: Option<TagePred>,
    /// Whether the target came from the micro-BTB (zero-bubble redirect).
    pub ubtb_hit: bool,
    /// Confidence is low (drives PUBS).
    pub low_confidence: bool,
    /// RAS snapshot for recovery.
    pub ras_snapshot: Vec<u64>,
    /// Global history before this branch (for recovery).
    pub ghist_before: u64,
}

#[derive(Debug, Clone, Copy, Default)]
struct BtbEntry {
    pc: u64,
    target: u64,
    valid: bool,
}

/// The composite BPU.
#[derive(Debug, Clone)]
pub struct Bpu {
    /// Direction predictor.
    pub tage: TageSc,
    ubtb: Vec<BtbEntry>,
    btb: Vec<BtbEntry>,
    ittage: Option<Vec<BtbEntry>>, // tagged target tables folded into one
    ras: Vec<u64>,
    ras_depth: usize,
    /// Speculative global history (restored on mispredict).
    pub ghist: u64,
    /// Statistics: conditional branch predictions.
    pub cond_predictions: u64,
    /// Statistics: conditional branch mispredictions.
    pub cond_mispredictions: u64,
    /// Statistics: indirect target mispredictions.
    pub indirect_mispredictions: u64,
}

impl Bpu {
    /// Build a BPU from the configuration knobs.
    pub fn new(ubtb_entries: usize, btb_entries: usize, tage_entries: usize, ittage: bool, ras_depth: usize) -> Self {
        Bpu {
            tage: TageSc::new(tage_entries),
            ubtb: vec![BtbEntry::default(); ubtb_entries.next_power_of_two()],
            btb: vec![BtbEntry::default(); btb_entries.next_power_of_two()],
            ittage: ittage.then(|| vec![BtbEntry::default(); 2048]),
            ras: Vec::new(),
            ras_depth,
            ghist: 0,
            cond_predictions: 0,
            cond_mispredictions: 0,
            indirect_mispredictions: 0,
        }
    }

    fn btb_idx(table: &[BtbEntry], pc: u64) -> usize {
        ((pc >> 1) as usize) & (table.len() - 1)
    }

    fn btb_lookup(table: &[BtbEntry], pc: u64) -> Option<u64> {
        let e = &table[Self::btb_idx(table, pc)];
        (e.valid && e.pc == pc).then_some(e.target)
    }

    fn btb_insert(table: &mut [BtbEntry], pc: u64, target: u64) {
        let i = Self::btb_idx(table, pc);
        table[i] = BtbEntry {
            pc,
            target,
            valid: true,
        };
    }

    /// Predict one control-flow instruction, speculatively updating
    /// history and the RAS.
    pub fn predict(&mut self, pc: u64, d: &DecodedInst) -> BranchPrediction {
        let kind = cf_kind(d).expect("predict called on a control-flow instruction");
        let ras_snapshot = self.ras.clone();
        let ghist_before = self.ghist;
        let fallthrough = pc.wrapping_add(d.len as u64);
        let mut tage_meta = None;
        let mut low_confidence = false;
        let (taken, target) = match kind {
            CfKind::Branch => {
                self.cond_predictions += 1;
                let p = self.tage.predict(pc, self.ghist);
                low_confidence = p.weak;
                let t = p.taken;
                tage_meta = Some(p);
                self.ghist = (self.ghist << 1) | t as u64;
                (t, pc.wrapping_add(d.imm as u64))
            }
            CfKind::Jump => (true, pc.wrapping_add(d.imm as u64)),
            CfKind::Call => {
                let target = if d.op == Op::Jal {
                    pc.wrapping_add(d.imm as u64)
                } else {
                    self.indirect_target(pc)
                };
                if self.ras.len() == self.ras_depth {
                    self.ras.remove(0);
                }
                self.ras.push(fallthrough);
                (true, target)
            }
            CfKind::Ret => {
                let target = self.ras.pop().unwrap_or_else(|| self.indirect_target(pc));
                (true, target)
            }
            CfKind::Indirect => (true, self.indirect_target(pc)),
        };
        let ubtb_hit = Self::btb_lookup(&self.ubtb, pc).is_some();
        BranchPrediction {
            taken,
            target,
            tage: tage_meta,
            ubtb_hit,
            low_confidence,
            ras_snapshot,
            ghist_before,
        }
    }

    fn indirect_target(&self, pc: u64) -> u64 {
        if let Some(it) = &self.ittage {
            if let Some(t) = Self::btb_lookup(it, pc) {
                return t;
            }
        }
        Self::btb_lookup(&self.btb, pc).unwrap_or(pc.wrapping_add(4))
    }

    /// Resolve a control-flow instruction: train predictors and (on a
    /// mispredict) restore speculative state.
    pub fn resolve(
        &mut self,
        pc: u64,
        d: &DecodedInst,
        pred: &BranchPrediction,
        actual_taken: bool,
        actual_target: u64,
        mispredicted: bool,
    ) {
        let kind = cf_kind(d).expect("resolve on control flow");
        if let Some(tp) = pred.tage {
            self.tage.update(pc, tp, actual_taken);
            if actual_taken != pred.taken {
                self.cond_mispredictions += 1;
            }
        }
        match kind {
            CfKind::Indirect | CfKind::Ret | CfKind::Call if d.op == Op::Jalr => {
                if actual_target != pred.target {
                    self.indirect_mispredictions += 1;
                }
                if let Some(it) = &mut self.ittage {
                    Self::btb_insert(it, pc, actual_target);
                }
                Self::btb_insert(&mut self.btb, pc, actual_target);
            }
            _ => {}
        }
        if actual_taken {
            Self::btb_insert(&mut self.ubtb, pc, actual_target);
            Self::btb_insert(&mut self.btb, pc, actual_target);
        }
        if mispredicted {
            // Restore speculative structures, then redo the history update
            // with the actual outcome.
            self.ras = pred.ras_snapshot.clone();
            self.ghist = pred.ghist_before;
            match kind {
                CfKind::Branch => self.ghist = (self.ghist << 1) | actual_taken as u64,
                CfKind::Call => {
                    if self.ras.len() == self.ras_depth {
                        self.ras.remove(0);
                    }
                    self.ras.push(pc.wrapping_add(d.len as u64));
                }
                CfKind::Ret => {
                    self.ras.pop();
                }
                _ => {}
            }
        }
    }

    /// Conditional-branch misprediction rate so far.
    pub fn mispredict_rate(&self) -> f64 {
        if self.cond_predictions == 0 {
            0.0
        } else {
            self.cond_mispredictions as f64 / self.cond_predictions as f64
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn branch_at(_pc: u64, imm: i64) -> DecodedInst {
        DecodedInst {
            op: Op::Bne,
            rs1: 5,
            rs2: 6,
            imm,
            len: 4,
            ..Default::default()
        }
    }

    fn new_bpu() -> Bpu {
        Bpu::new(32, 2048, 1024, true, 16)
    }

    #[test]
    fn classifies_control_flow() {
        let jal_ra = DecodedInst { op: Op::Jal, rd: 1, ..Default::default() };
        assert_eq!(cf_kind(&jal_ra), Some(CfKind::Call));
        let jal = DecodedInst { op: Op::Jal, rd: 0, ..Default::default() };
        assert_eq!(cf_kind(&jal), Some(CfKind::Jump));
        let ret = DecodedInst { op: Op::Jalr, rd: 0, rs1: 1, ..Default::default() };
        assert_eq!(cf_kind(&ret), Some(CfKind::Ret));
        let ind = DecodedInst { op: Op::Jalr, rd: 0, rs1: 5, ..Default::default() };
        assert_eq!(cf_kind(&ind), Some(CfKind::Indirect));
        let add = DecodedInst { op: Op::Add, ..Default::default() };
        assert_eq!(cf_kind(&add), None);
    }

    #[test]
    fn learns_loop_branch() {
        let mut bpu = new_bpu();
        let d = branch_at(0x1000, -16);
        let mut wrong = 0;
        for i in 0..500 {
            let taken = i % 10 != 9; // loop of 10
            let p = bpu.predict(0x1000, &d);
            let mis = p.taken != taken;
            if mis && i > 100 {
                wrong += 1;
            }
            bpu.resolve(0x1000, &d, &p, taken, 0x1000 - 16, mis);
        }
        assert!(wrong < 40, "late mispredicts {wrong}");
    }

    #[test]
    fn ras_predicts_returns() {
        let mut bpu = new_bpu();
        let call = DecodedInst { op: Op::Jal, rd: 1, imm: 0x100, len: 4, ..Default::default() };
        let ret = DecodedInst { op: Op::Jalr, rd: 0, rs1: 1, len: 4, ..Default::default() };
        let p = bpu.predict(0x2000, &call);
        assert_eq!(p.target, 0x2100);
        bpu.resolve(0x2000, &call, &p, true, 0x2100, false);
        let p = bpu.predict(0x2100, &ret);
        assert_eq!(p.target, 0x2004, "RAS must supply the return address");
    }

    #[test]
    fn ittage_learns_indirect_target() {
        let mut bpu = new_bpu();
        let ind = DecodedInst { op: Op::Jalr, rd: 0, rs1: 5, len: 4, ..Default::default() };
        let p = bpu.predict(0x3000, &ind);
        // Cold: wrong target.
        bpu.resolve(0x3000, &ind, &p, true, 0x9000, p.target != 0x9000);
        let p2 = bpu.predict(0x3000, &ind);
        assert_eq!(p2.target, 0x9000, "second prediction uses learned target");
    }

    #[test]
    fn mispredict_restores_history_and_ras() {
        let mut bpu = new_bpu();
        let call = DecodedInst { op: Op::Jal, rd: 1, imm: 0x100, len: 4, ..Default::default() };
        let br = branch_at(0x4000, 0x40);
        // Speculate: call then branch.
        let pc0 = bpu.predict(0x2000, &call);
        let before_ras = pc0.ras_snapshot.len();
        let pbr = bpu.predict(0x4000, &br);
        // The branch was wrong-path garbage: resolving the *call* as
        // mispredicted must restore the RAS to its snapshot + new push.
        bpu.resolve(0x2000, &call, &pc0, true, 0xbeef_0000, true);
        assert_eq!(bpu.ras.len(), before_ras + 1);
        assert_eq!(*bpu.ras.last().unwrap(), 0x2004);
        let _ = pbr;
    }

    #[test]
    fn ubtb_hit_after_training() {
        let mut bpu = new_bpu();
        let d = branch_at(0x5000, -32);
        let p = bpu.predict(0x5000, &d);
        assert!(!p.ubtb_hit, "cold uBTB");
        bpu.resolve(0x5000, &d, &p, true, 0x5000 - 32, p.taken != true);
        let p2 = bpu.predict(0x5000, &d);
        assert!(p2.ubtb_hit, "trained uBTB hits");
    }
}
