//! Micro-architecture configurations — Table II of the paper.
//!
//! [`XsConfig::yqh`] and [`XsConfig::nh`] reproduce the two tape-out
//! parameter sets; every field is adjustable for design-space exploration
//! exactly as the paper describes ("most of the design parameters are
//! configurable").

use serde::{Deserialize, Serialize};
use uncore::{CacheConfig, DdrConfig, DramModel, LinkLatencies, MemSystemConfig};

/// Issue-queue selection policy (paper §IV-D).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum IssuePolicy {
    /// Oldest-first (the AGE baseline).
    Age,
    /// AGE plus Prioritizing Unconfident Branch Slices.
    Pubs,
}

/// Memory-controller configuration choices used in Fig. 12.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum MemoryModel {
    /// Fixed average memory access time (FPGA-style padding cycles).
    FixedAmat(u64),
    /// DDR4-2400-like timing.
    Ddr4_2400,
    /// DDR4-1600-like timing.
    Ddr4_1600,
}

impl MemoryModel {
    /// Instantiate the timing model.
    pub fn build(self) -> DramModel {
        match self {
            MemoryModel::FixedAmat(n) => DramModel::fixed(n),
            MemoryModel::Ddr4_2400 => DramModel::ddr(DdrConfig::ddr4_2400()),
            MemoryModel::Ddr4_1600 => DramModel::ddr(DdrConfig::ddr4_1600()),
        }
    }
}

/// A deliberate DUT corruption for verification-flow testing.
///
/// The campaign runner's acceptance test arms one of these to prove the
/// whole catch → minimize → report pipeline works end to end; they are
/// never enabled in any preset.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum InjectedBug {
    /// Flip the low bit of every `Mul` writeback value.
    MulLowBit,
    /// Drop the sign extension of every `Addw` writeback value.
    AddwNoSext,
}

/// Full core + uncore configuration (Table II).
#[derive(Debug, Clone)]
pub struct XsConfig {
    /// Generation name ("YQH" / "NH").
    pub name: String,
    /// Number of cores.
    pub cores: usize,
    /// Micro-BTB entries.
    pub ubtb_entries: usize,
    /// BTB entries.
    pub btb_entries: usize,
    /// TAGE entries per table (4 tables).
    pub tage_entries: usize,
    /// Enable the ITTAGE indirect-target predictor (NH).
    pub ittage: bool,
    /// Return-address-stack depth.
    pub ras_depth: usize,
    /// Fetch width in bytes per cycle (8 x 4B in both generations).
    pub fetch_bytes: u64,
    /// Decode/rename width (instructions per cycle).
    pub decode_width: usize,
    /// Commit width (instructions per cycle).
    pub commit_width: usize,
    /// Reorder-buffer entries.
    pub rob_entries: usize,
    /// Load-queue entries.
    pub lq_entries: usize,
    /// Store-queue entries.
    pub sq_entries: usize,
    /// Store-buffer entries (committed stores draining to the L1D).
    pub sbuffer_entries: usize,
    /// Physical integer registers.
    pub int_prf: usize,
    /// Physical floating-point registers.
    pub fp_prf: usize,
    /// Per-issue-queue capacity.
    pub iq_entries: usize,
    /// Issue width of each ALU issue queue.
    pub alu_iq_width: usize,
    /// Number of ALU pipelines.
    pub alu_units: usize,
    /// Number of load pipelines (bank-interleaved).
    pub load_units: usize,
    /// Number of store pipelines.
    pub store_units: usize,
    /// Number of FMA pipelines.
    pub fma_units: usize,
    /// Enable macro-op fusion (NH).
    pub fusion: bool,
    /// Enable move elimination via physical-register reference counting
    /// (NH).
    pub move_elimination: bool,
    /// Issue policy.
    pub issue_policy: IssuePolicy,
    /// L1 ITLB entries.
    pub itlb_entries: usize,
    /// L1 DTLB entries.
    pub dtlb_entries: usize,
    /// Unified second-level TLB entries.
    pub stlb_entries: usize,
    /// Page-walk latency per level when the walk misses the STLB.
    pub ptw_level_latency: u64,
    /// L1 instruction cache.
    pub l1i: CacheConfig,
    /// L1 data cache.
    pub l1d: CacheConfig,
    /// Private L2.
    pub l2: CacheConfig,
    /// Shared L3 (None on YQH).
    pub l3: Option<CacheConfig>,
    /// Memory model.
    pub memory: MemoryModel,
    /// SC fails when more than this many cycles elapsed since the LR
    /// (the micro-architectural SC-timeout non-determinism of §III-B2c;
    /// `u64::MAX` disables it).
    pub sc_timeout_cycles: u64,
    /// Store-buffer drain delay in cycles (models lazily draining
    /// committed stores — the source of the Fig. 3 TLB scenario).
    pub sbuffer_drain_delay: u64,
    /// Deliberate DUT corruption for verification-flow tests (never set
    /// by any preset).
    pub injected_bug: Option<InjectedBug>,
    /// Enable per-cycle occupancy/latency histograms. The CPI stack is
    /// always on; this gates the heavier sampling so default runs keep
    /// their wall-clock.
    pub telemetry: bool,
    /// Enable coverage maps (per-commit opcode counters in DiffTest plus
    /// end-of-run diff-rule and pipeline-event coverage). One array add
    /// per commit when on; the default path pays nothing.
    pub coverage: bool,
    /// Enable full-trace lifecycle streaming: every finalized
    /// per-instruction [`Lifecycle`](crate::lifecycle::Lifecycle) record
    /// is buffered for the co-sim layer to drain into ArchDB (and export
    /// as O3PipeView text). The cheap layers — stage stamps, the
    /// last-N ring buffer, and the digest — are always on regardless.
    pub lifecycle: bool,
    /// DiffTest REF personality by name (`"arch"`, `"nemu"`,
    /// `"nemu-trace"`, ...). `None` selects the default architectural
    /// stepper. A string rather than an enum: xscore cannot depend on
    /// the interpreter crate, so resolution happens in the co-sim layer.
    pub ref_model: Option<String>,
    /// Event-driven idle-cycle skipping: when every core's tick is a
    /// provable no-op, jump the clock to the next scheduled event and
    /// bulk-charge the skipped span. Architecturally invisible (see
    /// DESIGN §5g); the knob exists so the equivalence suite can force
    /// the cycle-by-cycle path.
    pub event_driven: bool,
    /// Arm the §IV-C probe/grant race fault in core 0's L2 (a deliberate
    /// coherence bug for verification-flow tests; never set by presets).
    pub inject_l2_race: bool,
}

impl XsConfig {
    /// The first-generation (28 nm, 1.3 GHz) YQH configuration.
    pub fn yqh() -> Self {
        XsConfig {
            name: "YQH".into(),
            cores: 1,
            ubtb_entries: 32,
            btb_entries: 2048,
            tage_entries: 4096, // 16K entries over 4 tables
            ittage: false,
            ras_depth: 16,
            fetch_bytes: 32,
            decode_width: 6,
            commit_width: 6,
            rob_entries: 192,
            lq_entries: 64,
            sq_entries: 48,
            sbuffer_entries: 16,
            int_prf: 160,
            fp_prf: 160,
            iq_entries: 16,
            alu_iq_width: 2,
            alu_units: 4,
            load_units: 2,
            store_units: 1,
            fma_units: 2,
            fusion: false,
            move_elimination: false,
            issue_policy: IssuePolicy::Age,
            itlb_entries: 40,
            dtlb_entries: 40,
            stlb_entries: 4096,
            ptw_level_latency: 20,
            l1i: CacheConfig::new("l1i", 16 * 1024, 4, 2, 4),
            // YQH pairs a 16KB L1I with a 128KB L1+ cache; we fold the L1+
            // into a same-capacity second-level I-side by enlarging L2.
            l1d: CacheConfig::new("l1d", 32 * 1024, 8, 4, 8),
            l2: CacheConfig::new("l2", 1024 * 1024, 8, 14, 16),
            l3: None,
            memory: MemoryModel::Ddr4_1600,
            sc_timeout_cycles: u64::MAX,
            sbuffer_drain_delay: 20,
            injected_bug: None,
            telemetry: false,
            coverage: false,
            lifecycle: false,
            ref_model: None,
            event_driven: true,
            inject_l2_race: false,
        }
    }

    /// The second-generation (14 nm, 2 GHz) NH configuration.
    pub fn nh() -> Self {
        XsConfig {
            name: "NH".into(),
            cores: 1,
            ubtb_entries: 256,
            btb_entries: 4096,
            tage_entries: 4096,
            ittage: true,
            ras_depth: 32,
            fetch_bytes: 32,
            decode_width: 6,
            commit_width: 6,
            rob_entries: 256,
            lq_entries: 80,
            sq_entries: 64,
            sbuffer_entries: 24,
            int_prf: 192,
            fp_prf: 192,
            iq_entries: 32,
            alu_iq_width: 2,
            alu_units: 4,
            load_units: 2,
            store_units: 2, // STA/STD decoupled in NH
            fma_units: 2,
            fusion: true,
            move_elimination: true,
            issue_policy: IssuePolicy::Age,
            itlb_entries: 40,
            dtlb_entries: 136,
            stlb_entries: 2048,
            ptw_level_latency: 20,
            l1i: CacheConfig::new("l1i", 128 * 1024, 8, 2, 8),
            l1d: CacheConfig::new("l1d", 128 * 1024, 8, 4, 16),
            l2: CacheConfig::new("l2", 1024 * 1024, 8, 14, 24),
            l3: Some(CacheConfig::new("l3", 6 * 1024 * 1024, 6, 35, 32)),
            memory: MemoryModel::Ddr4_2400,
            sc_timeout_cycles: u64::MAX,
            sbuffer_drain_delay: 20,
            injected_bug: None,
            telemetry: false,
            coverage: false,
            lifecycle: false,
            ref_model: None,
            event_driven: true,
            inject_l2_race: false,
        }
    }

    /// NH as a dual-core (the tape-out configuration).
    pub fn nh_dual() -> Self {
        let mut c = Self::nh();
        c.cores = 2;
        c
    }

    /// NH with caches shrunk to a few KB and a fixed-AMAT memory, so
    /// cache- and memory-boundary behaviour shows up within test-sized
    /// workloads. The verification suite's default DiffTest target.
    pub fn small_nh() -> Self {
        let mut c = Self::nh();
        c.name = "small-NH".into();
        c.l1i = CacheConfig::new("l1i", 8192, 2, 2, 4);
        c.l1d = CacheConfig::new("l1d", 8192, 2, 4, 8);
        c.l2 = CacheConfig::new("l2", 32768, 4, 10, 8);
        c.l3 = Some(CacheConfig::new("l3", 131072, 4, 20, 16));
        c.memory = MemoryModel::FixedAmat(40);
        c
    }

    /// YQH with a fixed-AMAT memory, sized for test workloads.
    pub fn small_yqh() -> Self {
        let mut c = Self::yqh();
        c.name = "small-YQH".into();
        c.memory = MemoryModel::FixedAmat(60);
        c
    }

    /// Every named preset, for campaign-style enumeration.
    ///
    /// The slugs are stable identifiers: campaign reports and the
    /// `campaign` CLI refer to configurations by these names.
    pub fn preset_names() -> &'static [&'static str] {
        &["yqh", "nh", "nh-dual", "small-nh", "small-yqh"]
    }

    /// Look up a preset by slug (see [`XsConfig::preset_names`]).
    pub fn preset(name: &str) -> Option<Self> {
        match name {
            "yqh" => Some(Self::yqh()),
            "nh" => Some(Self::nh()),
            "nh-dual" => Some(Self::nh_dual()),
            "small-nh" => Some(Self::small_nh()),
            "small-yqh" => Some(Self::small_yqh()),
            _ => None,
        }
    }

    /// Arm a deliberate DUT bug (verification-flow tests only).
    pub fn with_injected_bug(mut self, bug: InjectedBug) -> Self {
        self.injected_bug = Some(bug);
        self
    }

    /// Shrink the LLC (Fig. 12's 2 MB / 4 MB FPGA configurations).
    pub fn with_llc_mb(mut self, mb: usize) -> Self {
        if let Some(l3) = &mut self.l3 {
            l3.size = mb * 1024 * 1024;
        }
        self
    }

    /// Replace the memory model (AMAT vs DDR configurations of Fig. 12).
    pub fn with_memory(mut self, m: MemoryModel) -> Self {
        self.memory = m;
        self
    }

    /// Enable PUBS issue prioritization.
    pub fn with_pubs(mut self) -> Self {
        self.issue_policy = IssuePolicy::Pubs;
        self
    }

    /// Enable the per-cycle occupancy/latency telemetry histograms.
    pub fn with_telemetry(mut self) -> Self {
        self.telemetry = true;
        self
    }

    /// Enable coverage-map collection (fuzzing and coverage-pin runs).
    pub fn with_coverage(mut self) -> Self {
        self.coverage = true;
        self
    }

    /// Enable full-trace lifecycle streaming into ArchDB.
    pub fn with_lifecycle(mut self) -> Self {
        self.lifecycle = true;
        self
    }

    /// Select the DiffTest REF personality by name.
    pub fn with_ref_model(mut self, name: impl Into<String>) -> Self {
        self.ref_model = Some(name.into());
        self
    }

    /// Force the idle-cycle skipper on or off (equivalence suite knob).
    pub fn with_event_driven(mut self, on: bool) -> Self {
        self.event_driven = on;
        self
    }

    /// Arm the §IV-C L2 probe/grant race fault (verification-flow tests).
    #[must_use]
    pub fn with_l2_race(mut self) -> Self {
        self.inject_l2_race = true;
        self
    }

    /// Derive the uncore configuration.
    pub fn mem_system_config(&self) -> MemSystemConfig {
        MemSystemConfig {
            cores: self.cores,
            l1i: self.l1i.clone(),
            l1d: self.l1d.clone(),
            l2: self.l2.clone(),
            l3: self.l3.clone(),
            links: LinkLatencies::default(),
            scoreboard: false,
            telemetry: self.telemetry,
        }
    }

    /// Render the Table II comparison for this config and another.
    pub fn table2(a: &XsConfig, b: &XsConfig) -> String {
        let mut s = String::new();
        let row = |s: &mut String, k: &str, va: String, vb: String| {
            s.push_str(&format!("{k:<22}{va:<22}{vb}\n"));
        };
        row(&mut s, "Feature", a.name.clone(), b.name.clone());
        row(
            &mut s,
            "microBTB",
            format!("{} entries", a.ubtb_entries),
            format!("{} entries", b.ubtb_entries),
        );
        row(
            &mut s,
            "BTB",
            format!("{} entries", a.btb_entries),
            format!("{} entries", b.btb_entries),
        );
        row(
            &mut s,
            "TAGE-SC",
            format!("{} entries", a.tage_entries * 4),
            format!("{} entries", b.tage_entries * 4),
        );
        row(
            &mut s,
            "Others",
            if a.ittage { "RAS, ITTAGE" } else { "RAS" }.into(),
            if b.ittage { "RAS, ITTAGE" } else { "RAS" }.into(),
        );
        row(
            &mut s,
            "L1 ICache",
            format!("{}KB, {}-way", a.l1i.size / 1024, a.l1i.ways),
            format!("{}KB, {}-way", b.l1i.size / 1024, b.l1i.ways),
        );
        row(
            &mut s,
            "L1 DCache",
            format!("{}KB, {}-way", a.l1d.size / 1024, a.l1d.ways),
            format!("{}KB, {}-way", b.l1d.size / 1024, b.l1d.ways),
        );
        row(
            &mut s,
            "L2 Cache",
            format!("{}MB {}-way", a.l2.size / 1024 / 1024, a.l2.ways),
            format!("{}MB {}-way", b.l2.size / 1024 / 1024, b.l2.ways),
        );
        row(
            &mut s,
            "L3 Cache",
            a.l3.as_ref()
                .map(|c| format!("{}MB {}-way", c.size / 1024 / 1024, c.ways))
                .unwrap_or_else(|| "-".into()),
            b.l3.as_ref()
                .map(|c| format!("{}MB {}-way", c.size / 1024 / 1024, c.ways))
                .unwrap_or_else(|| "-".into()),
        );
        row(
            &mut s,
            "L1 DTLB",
            format!("{} entries", a.dtlb_entries),
            format!("{} entries", b.dtlb_entries),
        );
        row(
            &mut s,
            "STLB",
            format!("{} entries", a.stlb_entries),
            format!("{} entries", b.stlb_entries),
        );
        row(
            &mut s,
            "Dec./Ren. Width",
            format!("{} instr./cycle", a.decode_width),
            format!("{} instr./cycle", b.decode_width),
        );
        row(
            &mut s,
            "ROB/LQ/SQ",
            format!("{}/{}/{}", a.rob_entries, a.lq_entries, a.sq_entries),
            format!("{}/{}/{}", b.rob_entries, b.lq_entries, b.sq_entries),
        );
        row(
            &mut s,
            "Phy. Int/FP RF",
            format!("{}/{}", a.int_prf, a.fp_prf),
            format!("{}/{}", b.int_prf, b.fp_prf),
        );
        row(
            &mut s,
            "Instruction Fusion",
            if a.fusion { "Yes" } else { "-" }.into(),
            if b.fusion { "Yes" } else { "-" }.into(),
        );
        row(
            &mut s,
            "Move Elimination",
            if a.move_elimination { "Yes" } else { "-" }.into(),
            if b.move_elimination { "Yes" } else { "-" }.into(),
        );
        s
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn presets_match_table2() {
        let y = XsConfig::yqh();
        assert_eq!(y.rob_entries, 192);
        assert_eq!((y.lq_entries, y.sq_entries), (64, 48));
        assert_eq!(y.int_prf, 160);
        assert!(!y.fusion && !y.move_elimination && !y.ittage);
        assert!(y.l3.is_none());

        let n = XsConfig::nh();
        assert_eq!(n.rob_entries, 256);
        assert_eq!((n.lq_entries, n.sq_entries), (80, 64));
        assert_eq!(n.int_prf, 192);
        assert!(n.fusion && n.move_elimination && n.ittage);
        assert_eq!(n.l3.as_ref().unwrap().size, 6 * 1024 * 1024);
        assert_eq!(n.dtlb_entries, 136);
    }

    #[test]
    fn llc_and_memory_overrides() {
        let n = XsConfig::nh().with_llc_mb(4).with_memory(MemoryModel::FixedAmat(250));
        assert_eq!(n.l3.as_ref().unwrap().size, 4 * 1024 * 1024);
        assert!(matches!(n.memory, MemoryModel::FixedAmat(250)));
        let y = XsConfig::yqh().with_llc_mb(4);
        assert!(y.l3.is_none(), "YQH has no L3 to resize");
    }

    #[test]
    fn table2_renders_both_columns() {
        let t = XsConfig::table2(&XsConfig::yqh(), &XsConfig::nh_dual());
        assert!(t.contains("YQH"));
        assert!(t.contains("NH"));
        assert!(t.contains("192/64/48"));
        assert!(t.contains("256/80/64"));
    }

    #[test]
    fn preset_lookup_round_trips() {
        for &name in XsConfig::preset_names() {
            let c = XsConfig::preset(name).unwrap_or_else(|| panic!("preset {name} missing"));
            assert!(c.injected_bug.is_none(), "{name} must ship without bugs");
        }
        assert!(XsConfig::preset("no-such-config").is_none());
        assert_eq!(XsConfig::preset("small-nh").unwrap().l1d.size, 8192);
        assert_eq!(XsConfig::preset("nh-dual").unwrap().cores, 2);
        assert!(matches!(
            XsConfig::preset("small-yqh").unwrap().memory,
            MemoryModel::FixedAmat(60)
        ));
    }

    #[test]
    fn pubs_toggle() {
        assert_eq!(XsConfig::nh().issue_policy, IssuePolicy::Age);
        assert_eq!(XsConfig::nh().with_pubs().issue_policy, IssuePolicy::Pubs);
    }
}
