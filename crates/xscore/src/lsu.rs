//! Load queue, store queue, and the store buffer.
//!
//! The store buffer holds *committed* stores draining lazily into the L1D
//! — the structure behind two paper scenarios: store-to-load forwarding
//! under RVWMO (§III-B2b) and the stale-PTE window of Fig. 3 (the PTW
//! does not snoop the store buffer).

use std::collections::VecDeque;

/// A load-queue entry.
#[derive(Debug, Clone, Copy)]
pub struct LqEntry {
    /// Owning ROB sequence number.
    pub seq: u64,
    /// Physical address once translated.
    pub paddr: Option<u64>,
    /// Access size.
    pub size: u64,
    /// The load has produced its value.
    pub done: bool,
}

/// A store-queue entry.
#[derive(Debug, Clone, Copy)]
pub struct SqEntry {
    /// Owning ROB sequence number.
    pub seq: u64,
    /// Physical address once the address uop executed.
    pub paddr: Option<u64>,
    /// Access size.
    pub size: u64,
    /// Store data once the data uop executed.
    pub data: Option<u64>,
    /// Committed (awaiting move to the store buffer).
    pub committed: bool,
    /// MMIO store (drains specially).
    pub mmio: bool,
}

/// A committed store waiting in the store buffer.
#[derive(Debug, Clone, Copy)]
pub struct SbufferEntry {
    /// Physical address.
    pub paddr: u64,
    /// Size in bytes.
    pub size: u64,
    /// Data.
    pub data: u64,
    /// Earliest cycle this entry may drain.
    pub drain_at: u64,
    /// In flight to the L1D.
    pub issued: bool,
    /// MMIO store.
    pub mmio: bool,
}

/// Result of scanning stores for a load.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ForwardResult {
    /// No older store overlaps: go to the cache.
    None,
    /// Fully forwarded value.
    Forward(u64),
    /// An older store overlaps partially or its data/address is not ready
    /// yet: the load must retry later.
    Stall,
}

/// The load/store unit state.
#[derive(Debug, Clone)]
pub struct Lsu {
    /// Load queue.
    pub lq: Vec<LqEntry>,
    /// Store queue.
    pub sq: Vec<SqEntry>,
    /// Store buffer (committed stores).
    pub sbuffer: VecDeque<SbufferEntry>,
    lq_cap: usize,
    sq_cap: usize,
    sbuffer_cap: usize,
}

impl Lsu {
    /// Create an LSU with the given queue capacities.
    pub fn new(lq_cap: usize, sq_cap: usize, sbuffer_cap: usize) -> Self {
        Lsu {
            lq: Vec::with_capacity(lq_cap),
            sq: Vec::with_capacity(sq_cap),
            sbuffer: VecDeque::with_capacity(sbuffer_cap),
            lq_cap,
            sq_cap,
            sbuffer_cap,
        }
    }

    /// Can another load be renamed?
    pub fn lq_full(&self) -> bool {
        self.lq.len() >= self.lq_cap
    }

    /// Can another store be renamed?
    pub fn sq_full(&self) -> bool {
        self.sq.len() >= self.sq_cap
    }

    /// Is the store buffer full (blocks store commit)?
    pub fn sbuffer_full(&self) -> bool {
        self.sbuffer.len() >= self.sbuffer_cap
    }

    /// Allocate a load-queue slot.
    pub fn alloc_load(&mut self, seq: u64, size: u64) -> usize {
        debug_assert!(!self.lq_full());
        self.lq.push(LqEntry {
            seq,
            paddr: None,
            size,
            done: false,
        });
        self.lq.len() - 1
    }

    /// Allocate a store-queue slot.
    pub fn alloc_store(&mut self, seq: u64, size: u64) -> usize {
        debug_assert!(!self.sq_full());
        self.sq.push(SqEntry {
            seq,
            paddr: None,
            size,
            data: None,
            committed: false,
            mmio: false,
        });
        self.sq.len() - 1
    }

    /// Scan older stores (SQ then store buffer) for a load at
    /// `paddr`/`size` belonging to `seq`.
    ///
    /// Under RVWMO the load may take its value from the youngest older
    /// matching store ("bypass from the private store buffer") — the
    /// behavior DiffTest's global-memory diff-rule legitimizes.
    pub fn forward(&self, seq: u64, paddr: u64, size: u64) -> ForwardResult {
        let load_end = paddr + size;
        // Youngest older SQ store first.
        for e in self.sq.iter().rev() {
            if e.seq >= seq {
                continue;
            }
            match e.paddr {
                None => {
                    // Unknown address: speculate past it; the memory-order
                    // check at store execution catches real conflicts.
                    continue;
                }
                Some(sp) => {
                    let send = sp + e.size;
                    if sp >= load_end || send <= paddr {
                        continue; // disjoint
                    }
                    if sp <= paddr && send >= load_end {
                        match e.data {
                            Some(d) => {
                                let shift = (paddr - sp) * 8;
                                let v = d >> shift;
                                let mask = if size == 8 { u64::MAX } else { (1 << (size * 8)) - 1 };
                                return ForwardResult::Forward(v & mask);
                            }
                            None => return ForwardResult::Stall,
                        }
                    }
                    return ForwardResult::Stall; // partial overlap
                }
            }
        }
        // Store buffer (committed, not yet drained), youngest first.
        for e in self.sbuffer.iter().rev() {
            let send = e.paddr + e.size;
            if e.paddr >= load_end || send <= paddr {
                continue;
            }
            if e.paddr <= paddr && send >= load_end {
                let shift = (paddr - e.paddr) * 8;
                let mask = if size == 8 { u64::MAX } else { (1 << (size * 8)) - 1 };
                return ForwardResult::Forward((e.data >> shift) & mask);
            }
            return ForwardResult::Stall;
        }
        ForwardResult::None
    }

    /// A store just resolved its address: find younger loads that already
    /// executed with an overlapping address (memory-order violation).
    /// Returns the oldest violating load's sequence number.
    pub fn order_violation(&self, store_seq: u64, paddr: u64, size: u64) -> Option<u64> {
        let send = paddr + size;
        self.lq
            .iter()
            .filter(|l| l.seq > store_seq)
            .filter(|l| {
                l.paddr.is_some_and(|lp| {
                    let lend = lp + l.size;
                    lp < send && lend > paddr
                })
            })
            .map(|l| l.seq)
            .min()
    }

    /// Move the committed store `seq` from the SQ into the store buffer.
    ///
    /// # Panics
    ///
    /// Panics if the entry is missing or incomplete.
    pub fn commit_store(&mut self, seq: u64, now: u64, drain_delay: u64) {
        let idx = self
            .sq
            .iter()
            .position(|e| e.seq == seq)
            .expect("committed store in SQ");
        let e = self.sq.remove(idx);
        let paddr = e.paddr.expect("committed store has an address");
        let data = e.data.expect("committed store has data");
        self.sbuffer.push_back(SbufferEntry {
            paddr,
            size: e.size,
            data,
            drain_at: now + drain_delay,
            issued: false,
            mmio: e.mmio,
        });
    }

    /// Remove a committed load from the LQ.
    pub fn commit_load(&mut self, seq: u64) {
        self.lq.retain(|e| e.seq != seq);
    }

    /// Flush entries younger than `seq`.
    pub fn flush_after(&mut self, seq: u64) {
        self.lq.retain(|e| e.seq <= seq);
        self.sq.retain(|e| e.seq <= seq);
        // The store buffer holds only committed stores: never flushed.
    }

    /// Flush all speculative entries (keeps the store buffer).
    pub fn flush_all_speculative(&mut self) {
        self.lq.clear();
        self.sq.clear();
    }

    /// The next drainable store-buffer entry (not yet issued and past its
    /// drain delay).
    pub fn next_drain(&mut self, now: u64) -> Option<&mut SbufferEntry> {
        self.sbuffer
            .iter_mut()
            .find(|e| !e.issued && e.drain_at <= now)
    }

    /// Remove the store-buffer head once its L1D write completed.
    pub fn pop_drained(&mut self) {
        self.sbuffer.pop_front();
    }

    /// True when no committed store is waiting to reach memory.
    pub fn sbuffer_empty(&self) -> bool {
        self.sbuffer.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn lsu() -> Lsu {
        Lsu::new(8, 8, 4)
    }

    #[test]
    fn full_forwarding_from_sq() {
        let mut l = lsu();
        let si = l.alloc_store(10, 8);
        l.sq[si].paddr = Some(0x1000);
        l.sq[si].data = Some(0xdead_beef_1122_3344);
        // Exact match.
        assert_eq!(
            l.forward(20, 0x1000, 8),
            ForwardResult::Forward(0xdead_beef_1122_3344)
        );
        // Contained smaller load: bytes at offset 2..4 are 0x1122.
        assert_eq!(l.forward(20, 0x1002, 2), ForwardResult::Forward(0x1122));
    }

    #[test]
    fn contained_load_extracts_bytes() {
        let mut l = lsu();
        let si = l.alloc_store(10, 8);
        l.sq[si].paddr = Some(0x1000);
        l.sq[si].data = Some(0x8877_6655_4433_2211);
        assert_eq!(l.forward(20, 0x1000, 1), ForwardResult::Forward(0x11));
        assert_eq!(l.forward(20, 0x1003, 1), ForwardResult::Forward(0x44));
        assert_eq!(l.forward(20, 0x1004, 4), ForwardResult::Forward(0x8877_6655));
    }

    #[test]
    fn youngest_older_store_wins() {
        let mut l = lsu();
        let a = l.alloc_store(10, 8);
        l.sq[a].paddr = Some(0x1000);
        l.sq[a].data = Some(1);
        let b = l.alloc_store(11, 8);
        l.sq[b].paddr = Some(0x1000);
        l.sq[b].data = Some(2);
        assert_eq!(l.forward(20, 0x1000, 8), ForwardResult::Forward(2));
        // A load older than store b sees only store a.
        assert_eq!(l.forward(11, 0x1000, 8), ForwardResult::Forward(1));
    }

    #[test]
    fn partial_overlap_stalls() {
        let mut l = lsu();
        let si = l.alloc_store(10, 4);
        l.sq[si].paddr = Some(0x1002);
        l.sq[si].data = Some(0xffff_ffff);
        assert_eq!(l.forward(20, 0x1000, 8), ForwardResult::Stall);
    }

    #[test]
    fn data_not_ready_stalls() {
        let mut l = lsu();
        let si = l.alloc_store(10, 8);
        l.sq[si].paddr = Some(0x1000);
        assert_eq!(l.forward(20, 0x1000, 8), ForwardResult::Stall);
    }

    #[test]
    fn unknown_address_is_speculated_past() {
        let mut l = lsu();
        let _ = l.alloc_store(10, 8); // paddr unknown
        assert_eq!(l.forward(20, 0x1000, 8), ForwardResult::None);
    }

    #[test]
    fn forwarding_from_store_buffer() {
        let mut l = lsu();
        let si = l.alloc_store(10, 8);
        l.sq[si].paddr = Some(0x2000);
        l.sq[si].data = Some(77);
        l.commit_store(10, 100, 20);
        assert_eq!(l.forward(20, 0x2000, 8), ForwardResult::Forward(77));
        assert!(l.next_drain(100).is_none(), "drain delay not elapsed");
        assert!(l.next_drain(120).is_some());
    }

    #[test]
    fn order_violation_detection() {
        let mut l = lsu();
        let li = l.alloc_load(20, 8);
        l.lq[li].paddr = Some(0x3000);
        l.lq[li].done = true;
        let li2 = l.alloc_load(22, 8);
        l.lq[li2].paddr = Some(0x3000);
        l.lq[li2].done = true;
        // Older store resolves to the same address: both loads violated;
        // the oldest is reported.
        assert_eq!(l.order_violation(10, 0x3000, 8), Some(20));
        // Disjoint store: no violation.
        assert_eq!(l.order_violation(10, 0x4000, 8), None);
        // Store younger than the loads: no violation.
        assert_eq!(l.order_violation(30, 0x3000, 8), None);
        // A load that issued (address known) but has not produced data
        // yet is also a violation: it will read stale memory.
        let li3 = l.alloc_load(25, 8);
        l.lq[li3].paddr = Some(0x3000);
        assert_eq!(l.order_violation(21, 0x3000, 8), Some(22));
    }

    #[test]
    fn flush_keeps_store_buffer() {
        let mut l = lsu();
        let si = l.alloc_store(10, 8);
        l.sq[si].paddr = Some(0x1000);
        l.sq[si].data = Some(5);
        l.commit_store(10, 0, 0);
        l.alloc_load(20, 8);
        l.alloc_store(21, 8);
        l.flush_after(15);
        assert!(l.lq.is_empty());
        assert!(l.sq.is_empty());
        assert_eq!(l.sbuffer.len(), 1, "committed stores survive flushes");
    }
}
