//! Physical register files, register alias tables, and the free list —
//! with reference-counted physical registers enabling move elimination
//! (paper §IV-A: "Move elimination is enabled by a reference counting
//! mechanism for the integer physical registers").

/// A physical register index.
pub type PReg = u16;

/// The register alias table for one register class.
pub type Rat = [PReg; 32];

/// One class (integer or floating point) of physical registers.
#[derive(Debug, Clone)]
pub struct Prf {
    value: Vec<u64>,
    ready: Vec<bool>,
    refcnt: Vec<u32>,
    free: Vec<PReg>,
    /// Bumped on every ready-bit set (write). Readiness of an in-flight
    /// source can only go false -> true (a register is recycled only
    /// after its last reader released it), so an unchanged epoch proves
    /// an issue queue's readiness scan would repeat its last result.
    epoch: u64,
}

impl Prf {
    /// Create a PRF with `n` physical registers. Register 0 is reserved
    /// as the always-zero register (always ready, never freed).
    pub fn new(n: usize) -> Self {
        let mut free: Vec<PReg> = (1..n as PReg).rev().collect();
        free.shrink_to_fit();
        Prf {
            value: vec![0; n],
            ready: vec![false; n],
            refcnt: vec![0; n],
            free,
            epoch: 0,
        }
    }

    /// The always-zero physical register.
    pub const ZERO: PReg = 0;

    /// Initialize the zero register and mark architectural reset state:
    /// returns a RAT with every architectural register mapped to freshly
    /// allocated, ready, zero-valued physical registers.
    pub fn reset_rat(&mut self) -> Rat {
        self.epoch += 1;
        self.ready[0] = true;
        self.refcnt[0] = u32::MAX / 2; // pinned
        let mut rat = [0 as PReg; 32];
        for (i, slot) in rat.iter_mut().enumerate().skip(1) {
            let p = self.alloc().expect("enough registers at reset");
            self.ready[p as usize] = true;
            self.value[p as usize] = 0;
            *slot = p;
            let _ = i;
        }
        rat
    }

    /// Allocate a fresh physical register (refcount 1, not ready).
    pub fn alloc(&mut self) -> Option<PReg> {
        let p = self.free.pop()?;
        self.ready[p as usize] = false;
        self.refcnt[p as usize] = 1;
        Some(p)
    }

    /// Number of free physical registers.
    pub fn free_count(&self) -> usize {
        self.free.len()
    }

    /// Increment the reference count (move elimination shares a mapping).
    pub fn addref(&mut self, p: PReg) {
        if p != Self::ZERO {
            self.refcnt[p as usize] += 1;
        }
    }

    /// Decrement the reference count, freeing the register at zero.
    pub fn release(&mut self, p: PReg) {
        if p == Self::ZERO {
            return;
        }
        let r = &mut self.refcnt[p as usize];
        debug_assert!(*r > 0, "double free of p{p}");
        *r -= 1;
        if *r == 0 {
            self.free.push(p);
        }
    }

    /// Write a value and mark the register ready.
    pub fn write(&mut self, p: PReg, v: u64) {
        if p != Self::ZERO {
            self.value[p as usize] = v;
            self.ready[p as usize] = true;
            self.epoch += 1;
        }
    }

    /// Wakeup epoch: changes whenever any ready bit is set.
    #[inline]
    pub fn epoch(&self) -> u64 {
        self.epoch
    }

    /// Read a register's value.
    #[inline]
    pub fn read(&self, p: PReg) -> u64 {
        self.value[p as usize]
    }

    /// True when the register holds its final value.
    #[inline]
    pub fn is_ready(&self, p: PReg) -> bool {
        self.ready[p as usize]
    }

    /// Current reference count (diagnostics/tests).
    pub fn refcount(&self, p: PReg) -> u32 {
        self.refcnt[p as usize]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn reset_maps_all_arch_regs() {
        let mut prf = Prf::new(64);
        let rat = prf.reset_rat();
        assert_eq!(rat[0], Prf::ZERO);
        // All distinct.
        let mut seen = std::collections::HashSet::new();
        for &p in &rat[1..] {
            assert!(seen.insert(p), "duplicate mapping");
            assert!(prf.is_ready(p));
            assert_eq!(prf.read(p), 0);
        }
        assert_eq!(prf.free_count(), 64 - 32);
    }

    #[test]
    fn alloc_write_read_cycle() {
        let mut prf = Prf::new(8);
        let p = prf.alloc().unwrap();
        assert!(!prf.is_ready(p));
        prf.write(p, 42);
        assert!(prf.is_ready(p));
        assert_eq!(prf.read(p), 42);
        prf.release(p);
        // Register recycled.
        let p2 = prf.alloc().unwrap();
        assert_eq!(p2, p);
        assert!(!prf.is_ready(p2), "recycled register is not ready");
    }

    #[test]
    fn move_elimination_refcounting() {
        let mut prf = Prf::new(8);
        let p = prf.alloc().unwrap();
        prf.addref(p); // mv elimination: second arch reg maps here
        prf.release(p); // first mapping dies
        assert_eq!(prf.refcount(p), 1);
        // Still allocated: not in the free list.
        let mut allocated = Vec::new();
        while let Some(q) = prf.alloc() {
            assert_ne!(q, p, "shared register must not be reallocated");
            allocated.push(q);
        }
        prf.release(p);
        assert_eq!(prf.refcount(p), 0);
        assert_eq!(prf.alloc(), Some(p), "freed after last reference");
    }

    #[test]
    fn zero_register_is_immortal() {
        let mut prf = Prf::new(64);
        let _ = prf.reset_rat();
        prf.write(Prf::ZERO, 99);
        assert_eq!(prf.read(Prf::ZERO), 0, "writes to p0 are discarded");
        prf.release(Prf::ZERO); // no-op
        assert!(prf.is_ready(Prf::ZERO));
    }

    #[test]
    fn exhaustion_returns_none() {
        let mut prf = Prf::new(4);
        assert!(prf.alloc().is_some());
        assert!(prf.alloc().is_some());
        assert!(prf.alloc().is_some());
        assert!(prf.alloc().is_none(), "p0 is reserved");
    }
}
