//! The reorder buffer.
//!
//! Entries are identified by a monotonically increasing sequence number;
//! age comparisons and flush boundaries are plain `seq` comparisons.

use crate::lifecycle::LifeStamps;
use crate::prf::{PReg, Rat};
use crate::uop::{CommitMem, Uop};
use riscv_isa::trap::Exception;
use std::collections::VecDeque;

/// Execution state of a ROB entry.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RobState {
    /// Waiting in an issue queue (or for commit-time execution).
    Waiting,
    /// Issued to a functional unit / LSU.
    Issued,
    /// Result written back; ready to commit.
    Done,
}

/// One in-flight instruction.
#[derive(Debug, Clone)]
pub struct RobEntry {
    /// Sequence number (global program order).
    pub seq: u64,
    /// The micro-op.
    pub uop: Uop,
    /// Physical destination (PRF::ZERO when none).
    pub phys_rd: PReg,
    /// Previous mapping of the destination (freed at commit).
    pub old_phys: PReg,
    /// Destination is floating point.
    pub dest_fp: bool,
    /// Entry has a register destination.
    pub has_dest: bool,
    /// This uop was a move eliminated at rename (never executes).
    pub eliminated: bool,
    /// Executes at commit (CSR/system/atomics).
    pub commit_exec: bool,
    /// Pipeline state.
    pub state: RobState,
    /// Exception recorded during execution (taken at commit).
    pub exception: Option<(Exception, u64)>,
    /// Result value (for probes and commit-time writes).
    pub wb_value: u64,
    /// Resolved control flow: taken?
    pub actual_taken: bool,
    /// Resolved control flow: target.
    pub actual_target: u64,
    /// Was this branch found mispredicted at resolution?
    pub mispredicted: bool,
    /// BPU already trained/recovered at resolution time.
    pub bpu_resolved: bool,
    /// RAT snapshots (int, fp) for control-flow recovery.
    pub rat_snapshot: Option<Box<(Rat, Rat)>>,
    /// Load-queue index, if a load.
    pub lq_idx: Option<usize>,
    /// Store-queue index, if a store.
    pub sq_idx: Option<usize>,
    /// Memory access info for the commit probe.
    pub mem_info: Option<CommitMem>,
    /// SC failure flag.
    pub sc_failed: bool,
    /// PUBS: this uop is in an unconfident branch slice.
    pub high_priority: bool,
    /// Physical source registers (fp?, preg).
    pub phys_srcs: [Option<(bool, PReg)>; 3],
    /// Memory-order violation: squash and re-fetch at commit.
    pub replay_at_commit: bool,
    /// Floating-point flags accumulated by this instruction.
    pub fflags: u64,
    /// Cycle the uop issued (0 until issued; load-to-use telemetry).
    pub issued_at: u64,
    /// Per-stage lifecycle stamps (always recorded; see
    /// [`crate::lifecycle`]).
    pub life: LifeStamps,
}

impl RobEntry {
    /// Create an entry in the Waiting state.
    pub fn new(seq: u64, uop: Uop) -> Self {
        RobEntry {
            seq,
            uop,
            phys_rd: 0,
            old_phys: 0,
            dest_fp: false,
            has_dest: false,
            eliminated: false,
            commit_exec: false,
            state: RobState::Waiting,
            exception: None,
            wb_value: 0,
            actual_taken: false,
            actual_target: 0,
            mispredicted: false,
            bpu_resolved: false,
            rat_snapshot: None,
            lq_idx: None,
            sq_idx: None,
            mem_info: None,
            sc_failed: false,
            high_priority: false,
            phys_srcs: [None; 3],
            replay_at_commit: false,
            fflags: 0,
            issued_at: 0,
            life: LifeStamps::default(),
        }
    }
}

/// The reorder buffer: a bounded FIFO of in-flight instructions.
#[derive(Debug, Clone)]
pub struct Rob {
    entries: VecDeque<RobEntry>,
    capacity: usize,
    next_seq: u64,
}

impl Rob {
    /// Create a ROB with `capacity` entries.
    pub fn new(capacity: usize) -> Self {
        Rob {
            entries: VecDeque::with_capacity(capacity),
            capacity,
            next_seq: 1,
        }
    }

    /// True when no more instructions can be renamed this cycle.
    pub fn is_full(&self) -> bool {
        self.entries.len() >= self.capacity
    }

    /// Number of in-flight instructions.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// True when empty.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Allocate the next entry, returning its sequence number.
    ///
    /// # Panics
    ///
    /// Panics when full — callers must check [`Rob::is_full`].
    pub fn push(&mut self, uop: Uop) -> u64 {
        assert!(!self.is_full(), "ROB overflow");
        let seq = self.next_seq;
        self.next_seq += 1;
        self.entries.push_back(RobEntry::new(seq, uop));
        seq
    }

    /// Access an entry by sequence number.
    ///
    /// Sequence numbers are strictly increasing but *not* contiguous
    /// (flushes leave gaps), so this is a binary search.
    pub fn get(&self, seq: u64) -> Option<&RobEntry> {
        let idx = self
            .entries
            .binary_search_by_key(&seq, |e| e.seq)
            .ok()?;
        Some(&self.entries[idx])
    }

    /// Mutable access by sequence number.
    pub fn get_mut(&mut self, seq: u64) -> Option<&mut RobEntry> {
        let idx = self
            .entries
            .binary_search_by_key(&seq, |e| e.seq)
            .ok()?;
        Some(&mut self.entries[idx])
    }

    /// The oldest entry.
    pub fn head(&self) -> Option<&RobEntry> {
        self.entries.front()
    }

    /// Pop the oldest entry (commit).
    pub fn pop_head(&mut self) -> Option<RobEntry> {
        self.entries.pop_front()
    }

    /// Remove every entry younger than `seq`, returning them oldest-first
    /// (mispredict/violation flush).
    pub fn flush_after(&mut self, seq: u64) -> Vec<RobEntry> {
        let keep = self
            .entries
            .iter()
            .position(|e| e.seq > seq)
            .unwrap_or(self.entries.len());
        self.entries.split_off(keep).into()
    }

    /// Remove everything (full flush), returning the entries oldest-first.
    pub fn flush_all(&mut self) -> Vec<RobEntry> {
        std::mem::take(&mut self.entries).into()
    }

    /// Iterate over in-flight entries, oldest first.
    pub fn iter(&self) -> impl Iterator<Item = &RobEntry> {
        self.entries.iter()
    }

    /// Iterate mutably, oldest first.
    pub fn iter_mut(&mut self) -> impl Iterator<Item = &mut RobEntry> {
        self.entries.iter_mut()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use riscv_isa::op::{DecodedInst, Op};

    fn uop(pc: u64) -> Uop {
        Uop::new(
            pc,
            DecodedInst {
                op: Op::Addi,
                rd: 1,
                len: 4,
                ..Default::default()
            },
            None,
            pc + 4,
        )
    }

    #[test]
    fn push_get_pop() {
        let mut rob = Rob::new(4);
        let s1 = rob.push(uop(0x100));
        let s2 = rob.push(uop(0x104));
        assert_eq!(rob.get(s1).unwrap().uop.pc, 0x100);
        assert_eq!(rob.get(s2).unwrap().uop.pc, 0x104);
        assert_eq!(rob.head().unwrap().seq, s1);
        rob.pop_head();
        assert_eq!(rob.head().unwrap().seq, s2);
        assert!(rob.get(s1).is_none(), "popped entries are unreachable");
        assert_eq!(rob.get(s2).unwrap().seq, s2);
    }

    #[test]
    fn capacity_enforced() {
        let mut rob = Rob::new(2);
        rob.push(uop(0));
        rob.push(uop(4));
        assert!(rob.is_full());
    }

    #[test]
    fn flush_after_removes_younger() {
        let mut rob = Rob::new(8);
        let seqs: Vec<u64> = (0..6).map(|i| rob.push(uop(i * 4))).collect();
        let flushed = rob.flush_after(seqs[2]);
        assert_eq!(flushed.len(), 3);
        assert!(flushed.iter().all(|e| e.seq > seqs[2]));
        assert_eq!(rob.len(), 3);
        assert!(rob.get(seqs[3]).is_none());
        assert!(rob.get(seqs[2]).is_some());
        // Seq numbers keep increasing after a flush.
        let s = rob.push(uop(0x40));
        assert!(s > seqs[5]);
    }

    #[test]
    fn flush_all_empties() {
        let mut rob = Rob::new(8);
        rob.push(uop(0));
        rob.push(uop(4));
        let flushed = rob.flush_all();
        assert_eq!(flushed.len(), 2);
        assert!(rob.is_empty());
    }
}
