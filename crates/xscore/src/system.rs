//! Whole-system wrapper: one or two cores over the shared memory
//! hierarchy, with cross-core reservation snooping.

use crate::config::XsConfig;
use crate::core::{Core, CycleOutput};
use riscv_isa::asm::Program;
use riscv_isa::mem::SparseMemory;
use riscv_isa::state::ArchState;
use uncore::MemSystem;

/// A single- or dual-core XiangShan system.
#[derive(Debug, Clone)]
pub struct XsSystem {
    /// The cores.
    pub cores: Vec<Core>,
    /// The shared memory hierarchy.
    pub mem: MemSystem,
}

impl XsSystem {
    /// Boot a program on all cores (every hart starts at the entry).
    pub fn new(cfg: XsConfig, program: &Program) -> Self {
        let mut backing = SparseMemory::new();
        program.load_into(&mut backing);
        Self::from_memory(cfg, backing, program.entry)
    }

    /// Build from a pre-populated physical memory.
    pub fn from_memory(cfg: XsConfig, backing: SparseMemory, boot_pc: u64) -> Self {
        let mut mem = MemSystem::new(cfg.mem_system_config(), cfg.memory.build(), backing);
        if cfg.inject_l2_race {
            mem.inject_l2_race_bug(0);
        }
        let cores = (0..cfg.cores)
            .map(|h| Core::new(cfg.clone(), h, boot_pc))
            .collect();
        XsSystem { cores, mem }
    }

    /// Restore a checkpointed architectural state into core 0.
    pub fn restore(&mut self, state: &ArchState) {
        self.cores[0].restore_arch_state(state);
    }

    /// Advance one cycle; returns each core's output.
    pub fn tick(&mut self) -> Vec<CycleOutput> {
        let mut outs = Vec::new();
        self.tick_into(&mut outs);
        outs
    }

    /// Advance one cycle, writing each core's output into a caller-owned
    /// buffer (resized to one entry per core, entries cleared). Reusing
    /// one buffer across cycles keeps the driver loop allocation-free.
    pub fn tick_into(&mut self, outs: &mut Vec<CycleOutput>) {
        outs.resize_with(self.cores.len(), CycleOutput::default);
        let completions = self.mem.tick();
        if self.cores.len() == 1 {
            // Single-core fast path: every completion is ours, no
            // per-core filter copy needed.
            self.cores[0].tick_into(&mut self.mem, &completions, &mut outs[0]);
        } else {
            for h in 0..self.cores.len() {
                let mine: Vec<_> = completions
                    .iter()
                    .filter(|c| c.req.core == h)
                    .cloned()
                    .collect();
                self.cores[h].tick_into(&mut self.mem, &mine, &mut outs[h]);
                // Same-cycle reservation snoop: an SC success or AMO write
                // decided during hart `h`'s tick linearizes *now* — later
                // harts in this cycle (and everyone next cycle) must see
                // their reservation dead before deciding their own SC.
                // Waiting for the store's completion drain leaves a full
                // round-trip window where both harts' SCs succeed from the
                // same loaded value.
                if !outs[h].res_kills.is_empty() {
                    let (before, rest) = self.cores.split_at_mut(h);
                    let after = &mut rest[1..];
                    for &(paddr, size) in &outs[h].res_kills {
                        for core in before.iter_mut().chain(after.iter_mut()) {
                            core.snoop_remote_store(paddr, size);
                        }
                    }
                }
            }
        }
        // Cross-core reservation snooping on drained stores (plain-store
        // visibility; atomic kills already fired at decision time above,
        // a second overlapping snoop is a harmless no-op).
        if self.cores.len() > 1 {
            let drains: Vec<(usize, u64, u64)> = outs
                .iter()
                .flat_map(|o| o.drains.iter().map(|d| (d.hart, d.paddr, d.size)))
                .collect();
            for (h, paddr, size) in drains {
                for (other, core) in self.cores.iter_mut().enumerate() {
                    if other != h {
                        core.snoop_remote_store(paddr, size);
                    }
                }
            }
        }
    }

    /// Advance one cycle; when event-driven skipping is enabled
    /// (`cfg.event_driven`) and every core's tick was a provable no-op,
    /// additionally bulk-advance the clock to just before the next
    /// scheduled event — memory-system delivery/completion or per-core
    /// queued work — charging the skipped span so every counter,
    /// histogram, and CSR lands exactly where cycle-by-cycle execution
    /// would put it (DESIGN §5g). `limit` is a cycle the clock may land
    /// on exactly but never pass (run deadline, snapshot boundary).
    pub fn tick_skipping(&mut self, limit: u64) -> Vec<CycleOutput> {
        let mut outs = Vec::new();
        self.tick_skipping_into(limit, &mut outs);
        outs
    }

    /// Buffer-reusing form of [`XsSystem::tick_skipping`]; see
    /// [`XsSystem::tick_into`] for the buffer contract.
    pub fn tick_skipping_into(&mut self, limit: u64, outs: &mut Vec<CycleOutput>) {
        self.tick_into(outs);
        if !self.cores[0].cfg.event_driven || self.cores.iter().any(|c| c.made_progress()) {
            return;
        }
        let now = self.mem.cycle();
        // Events at cycle E must run a real tick landing on E, so the
        // skip stops at E - 1. With no events anywhere the system is
        // provably idle (halted or deadlocked) through `limit`.
        let mut stop = limit;
        if let Some(e) = self.mem.next_event_cycle() {
            stop = stop.min(e.saturating_sub(1));
        }
        for core in &mut self.cores {
            if let Some(e) = core.next_event_cycle() {
                stop = stop.min(e.saturating_sub(1));
            }
        }
        if stop > now {
            let n = stop - now;
            self.mem.advance_idle(n);
            for core in &mut self.cores {
                core.charge_idle_cycles(&self.mem, n);
            }
        }
    }

    /// True when every core halted.
    pub fn all_halted(&self) -> bool {
        self.cores.iter().all(|c| c.is_halted())
    }

    /// Run until all cores halt or `max_cycles` elapse. Returns core 0's
    /// exit code.
    pub fn run(&mut self, max_cycles: u64) -> Option<u64> {
        let deadline = self.cores[0].cycle() + max_cycles;
        let mut outs = Vec::new();
        while self.cores[0].cycle() < deadline {
            if self.all_halted() {
                break;
            }
            self.tick_skipping_into(deadline, &mut outs);
        }
        self.cores[0].halted
    }

    /// Run, additionally collecting every commit event (single-threaded
    /// DiffTest-style consumption).
    pub fn run_collect(&mut self, max_cycles: u64) -> Vec<crate::uop::CommitEvent> {
        let mut all = Vec::new();
        let mut outs = Vec::new();
        let deadline = self.cores[0].cycle() + max_cycles;
        while self.cores[0].cycle() < deadline {
            if self.all_halted() {
                break;
            }
            self.tick_skipping_into(deadline, &mut outs);
            for o in &mut outs {
                all.append(&mut o.commits);
            }
        }
        all
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use riscv_isa::asm::{reg::*, Asm};

    fn tiny_cfg() -> XsConfig {
        // NH shrunk for fast unit tests.
        let mut c = XsConfig::nh();
        c.l1i = uncore::CacheConfig::new("l1i", 8192, 2, 2, 4);
        c.l1d = uncore::CacheConfig::new("l1d", 8192, 2, 4, 8);
        c.l2 = uncore::CacheConfig::new("l2", 32768, 4, 10, 8);
        c.l3 = Some(uncore::CacheConfig::new("l3", 131072, 4, 20, 16));
        c.memory = crate::config::MemoryModel::FixedAmat(50);
        c
    }

    fn run_program(build: impl FnOnce(&mut Asm), max_cycles: u64) -> (Option<u64>, XsSystem) {
        let mut a = Asm::new(0x8000_0000);
        build(&mut a);
        let p = a.assemble();
        let mut sys = XsSystem::new(tiny_cfg(), &p);
        let code = sys.run(max_cycles);
        (code, sys)
    }

    #[test]
    fn simple_arithmetic() {
        let (code, _) = run_program(
            |a| {
                a.li(T0, 20);
                a.li(T1, 22);
                a.add(A0, T0, T1);
                a.ebreak();
            },
            20_000,
        );
        assert_eq!(code, Some(42));
    }

    #[test]
    fn loop_sum() {
        let (code, sys) = run_program(
            |a| {
                a.li(T0, 0);
                a.li(T1, 100);
                a.li(T2, 0);
                let top = a.bound_label();
                a.add(T2, T2, T0);
                a.addi(T0, T0, 1);
                a.bne(T0, T1, top);
                a.mv(A0, T2);
                a.ebreak();
            },
            100_000,
        );
        assert_eq!(code, Some(4950));
        let perf = &sys.cores[0].perf;
        assert!(perf.instret > 300);
        assert!(perf.ipc() > 0.3, "ipc {}", perf.ipc());
    }

    #[test]
    fn loads_and_stores() {
        let (code, _) = run_program(
            |a| {
                a.li(T0, 0x8001_0000);
                a.li(T1, 0x1234_5678_9abc_def0u64 as i64);
                a.sd(T1, 0, T0);
                a.ld(T2, 0, T0);
                a.lw(T3, 0, T0); // sign-extended low word
                a.lbu(T4, 7, T0);
                a.sub(A0, T2, T1); // 0 if roundtrip worked
                a.ebreak();
            },
            50_000,
        );
        assert_eq!(code, Some(0));
    }

    #[test]
    fn store_to_load_forwarding() {
        let (code, sys) = run_program(
            |a| {
                a.li(T0, 0x8001_0000);
                a.li(A0, 0);
                a.li(T1, 64);
                let top = a.bound_label();
                a.sd(T1, 0, T0);
                a.ld(T2, 0, T0); // forwarded from the store
                a.add(A0, A0, T2);
                a.addi(T1, T1, -1);
                a.bnez(T1, top);
                a.ebreak();
            },
            200_000,
        );
        assert_eq!(code, Some((1..=64u64).sum::<u64>()));
        assert!(
            sys.cores[0].perf.load_forwards > 0,
            "forwarding must trigger"
        );
    }

    #[test]
    fn function_calls() {
        let (code, _) = run_program(
            |a| {
                let f = a.label();
                let done = a.label();
                a.li(A0, 0);
                a.li(S0, 10);
                let top = a.bound_label();
                a.call(f);
                a.addi(S0, S0, -1);
                a.bnez(S0, top);
                a.j(done);
                a.bind(f);
                a.addi(A0, A0, 7);
                a.ret();
                a.bind(done);
                a.ebreak();
            },
            100_000,
        );
        assert_eq!(code, Some(70));
    }

    #[test]
    fn branch_misprediction_recovery() {
        // Data-dependent unpredictable-ish branches with side effects on
        // both paths must still produce the architectural result.
        let (code, _) = run_program(
            |a| {
                a.li(T0, 0); // i
                a.li(T1, 200); // n
                a.li(A0, 0); // acc
                a.li(T3, 0x9e3779b9); // hash constant
                let top = a.bound_label();
                let odd = a.label();
                let next = a.label();
                // pseudo-random bit from i*K >> 13
                a.mul(T4, T0, T3);
                a.srli(T4, T4, 13);
                a.andi(T4, T4, 1);
                a.bnez(T4, odd);
                a.addi(A0, A0, 3);
                a.j(next);
                a.bind(odd);
                a.addi(A0, A0, 5);
                a.bind(next);
                a.addi(T0, T0, 1);
                a.bne(T0, T1, top);
                a.ebreak();
            },
            400_000,
        );
        // Compute expected on the host.
        let mut acc = 0u64;
        for i in 0..200u64 {
            let t = (i.wrapping_mul(0x9e37_79b9) >> 13) & 1;
            acc += if t != 0 { 5 } else { 3 };
        }
        assert_eq!(code, Some(acc));
    }

    #[test]
    fn csr_and_system() {
        let (code, _) = run_program(
            |a| {
                a.li(T0, 0x1234);
                a.csrrw(ZERO, riscv_isa::csr::addr::MSCRATCH, T0);
                a.csrrs(A0, riscv_isa::csr::addr::MSCRATCH, ZERO);
                a.ebreak();
            },
            50_000,
        );
        assert_eq!(code, Some(0x1234));
    }

    #[test]
    fn exception_and_trap_handler() {
        let (code, sys) = run_program(
            |a| {
                let handler = a.label();
                a.la(T0, handler);
                a.csrrw(ZERO, riscv_isa::csr::addr::MTVEC, T0);
                a.ecall();
                a.li(A0, 1); // skipped
                a.ebreak();
                a.bind(handler);
                a.li(A0, 99);
                a.ebreak();
            },
            50_000,
        );
        assert_eq!(code, Some(99));
        assert_eq!(
            sys.cores[0].csr.mcause,
            riscv_isa::trap::Exception::EcallFromM.code()
        );
    }

    #[test]
    fn fp_pipeline() {
        let (code, _) = run_program(
            |a| {
                a.li(T0, 3);
                a.fcvt_d_l(FT0, T0);
                a.li(T1, 4);
                a.fcvt_d_l(FT1, T1);
                a.fmadd_d(FT2, FT0, FT1, FT0); // 3*4+3 = 15
                a.fsqrt_d(FT3, FT1); // 2.0
                a.fmul_d(FT2, FT2, FT3); // 30
                a.fcvt_l_d(A0, FT2);
                a.ebreak();
            },
            50_000,
        );
        assert_eq!(code, Some(30));
    }

    #[test]
    fn amo_and_lrsc() {
        let (code, _) = run_program(
            |a| {
                a.li(T0, 0x8001_0000);
                a.li(T1, 5);
                a.amoadd_d(T2, T1, T0); // mem=5, t2=0
                a.amoadd_d(T3, T1, T0); // mem=10, t3=5
                a.lr_d(T4, T0); // t4=10
                a.addi(T4, T4, 1);
                a.sc_d(T5, T4, T0); // success: t5=0, mem=11
                a.ld(T6, 0, T0);
                // a0 = t3*100 + t5*10 + t6 = 500 + 0 + 11
                a.li(A1, 100);
                a.mul(A0, T3, A1);
                a.li(A1, 10);
                a.mul(T5, T5, A1);
                a.add(A0, A0, T5);
                a.add(A0, A0, T6);
                a.ebreak();
            },
            100_000,
        );
        assert_eq!(code, Some(511));
    }

    #[test]
    fn uart_mmio_store() {
        let (code, sys) = run_program(
            |a| {
                a.li(T0, crate::core::UART_TX as i64);
                a.li(T1, b'O' as i64);
                a.sb(T1, 0, T0);
                a.li(T1, b'K' as i64);
                a.sb(T1, 0, T0);
                a.li(A0, 0);
                a.ebreak();
            },
            50_000,
        );
        assert_eq!(code, Some(0));
        assert_eq!(sys.cores[0].output, b"OK");
    }

    #[test]
    fn memory_order_violation_recovers() {
        // A pointer-chased store followed closely by a load of the same
        // address: the load may speculate past the store and must replay.
        let (code, _) = run_program(
            |a| {
                a.li(T0, 0x8001_0000);
                a.li(A0, 0);
                a.li(S0, 50);
                let top = a.bound_label();
                // Make the store address slow to compute.
                a.mul(T1, S0, S0);
                a.div(T1, T1, S0); // t1 = s0
                a.andi(T1, T1, 0);
                a.add(T2, T0, T1); // t2 = t0 (slowly)
                a.sd(S0, 0, T2);
                a.ld(T3, 0, T0); // same address, fast to compute
                a.add(A0, A0, T3);
                a.addi(S0, S0, -1);
                a.bnez(S0, top);
                a.ebreak();
            },
            500_000,
        );
        assert_eq!(code, Some((1..=50u64).sum::<u64>()));
    }

    #[test]
    fn dual_core_shared_counter() {
        let mut a = Asm::new(0x8000_0000);
        // Each hart adds its (hartid+1) 50 times to a shared counter with
        // amoadd, then hart 0 waits for hart 1's done flag.
        let counter = 0x8002_0000i64;
        let done_flag = 0x8002_0040i64;
        let hart1 = a.label();
        let finish = a.label();
        a.csrrs(T0, riscv_isa::csr::addr::MHARTID, ZERO);
        a.bnez(T0, hart1);
        // hart 0:
        a.li(T1, counter);
        a.li(T2, 1);
        a.li(S0, 50);
        let l0 = a.bound_label();
        a.amoadd_d(ZERO, T2, T1);
        a.addi(S0, S0, -1);
        a.bnez(S0, l0);
        // wait for hart 1
        a.li(T3, done_flag);
        let wait = a.bound_label();
        a.ld(T4, 0, T3);
        a.beqz(T4, wait);
        a.j(finish);
        // hart 1:
        a.bind(hart1);
        a.li(T1, counter);
        a.li(T2, 2);
        a.li(S0, 50);
        let l1 = a.bound_label();
        a.amoadd_d(ZERO, T2, T1);
        a.addi(S0, S0, -1);
        a.bnez(S0, l1);
        a.li(T3, done_flag);
        a.li(T4, 1);
        a.sd(T4, 0, T3);
        a.fence();
        // hart 1 exits with its own code
        a.li(A0, 0);
        a.ebreak();
        a.bind(finish);
        a.li(T1, counter);
        a.ld(A0, 0, T1);
        a.ebreak();
        let p = a.assemble();
        let mut cfg = tiny_cfg();
        cfg.cores = 2;
        let mut sys = XsSystem::new(cfg, &p);
        let code = sys.run(2_000_000);
        assert_eq!(code, Some(150), "50*1 + 50*2 from both harts");
    }

    /// Build the two-hart reservation-kill scenario: hart 0 takes an LR
    /// on `line`, signals hart 1, waits for hart 1 to store `0xaa` at
    /// `victim` and acknowledge, then attempts the SC back to `line`.
    /// Returns `(sc_result, final value at line)` packed by the program
    /// as `a0 = sc_result * 256 + (loaded & 0xff)`.
    fn run_cross_hart_sc(line: i64, victim: i64) -> (Option<u64>, XsSystem) {
        let flag = 0x8002_1000i64; // hart0 -> hart1: "LR taken"
        let ack = 0x8002_1040i64; // hart1 -> hart0: "store drained"
        let mut a = Asm::new(0x8000_0000);
        let hart1 = a.label();
        a.csrrs(T0, riscv_isa::csr::addr::MHARTID, ZERO);
        a.bnez(T0, hart1);
        // hart 0: reserve, signal, wait, attempt the SC.
        a.li(S0, line);
        a.lr_d(T1, S0);
        a.li(T2, 1);
        a.li(T3, flag);
        a.sd(T2, 0, T3);
        a.li(T3, ack);
        let wait = a.bound_label();
        a.ld(T4, 0, T3);
        a.beqz(T4, wait);
        a.li(T5, 7);
        a.sc_d(T6, T5, S0); // t6 = 0 on success, 1 on failure
        a.ld(A1, 0, S0);
        a.andi(A1, A1, 0xff);
        a.slli(A0, T6, 8);
        a.add(A0, A0, A1);
        a.ebreak();
        // hart 1: wait for the reservation, dirty the victim line, ack.
        a.bind(hart1);
        a.li(T3, flag);
        let spin = a.bound_label();
        a.ld(T4, 0, T3);
        a.beqz(T4, spin);
        a.li(S1, victim);
        a.li(T5, 0xaa);
        a.sd(T5, 0, S1);
        a.fence();
        a.li(T3, ack);
        a.li(T4, 1);
        a.sd(T4, 0, T3);
        a.li(A0, 0);
        a.ebreak();
        let p = a.assemble();
        let mut cfg = tiny_cfg();
        cfg.cores = 2;
        let mut sys = XsSystem::new(cfg, &p);
        let code = sys.run(2_000_000);
        (code, sys)
    }

    #[test]
    fn remote_store_kills_reservation() {
        // Hart 1 writes the very line hart 0 reserved: the SC must fail
        // and the remote value must survive.
        let line = 0x8002_0000i64;
        let (code, sys) = run_cross_hart_sc(line, line);
        assert_eq!(code, Some(0x1aa), "SC fails (1) and memory keeps 0xaa");
        assert!(
            sys.cores[0].perf.reservation_snoop_kills > 0,
            "the failure must come from the cross-hart snoop"
        );
        assert_eq!(sys.cores[0].perf.sc_successes, 0);
        assert_eq!(sys.cores[0].perf.sc_failures, 1);
    }

    #[test]
    fn remote_store_to_other_line_preserves_reservation() {
        // Negative control: hart 1 writes a different reservation granule;
        // hart 0's SC must succeed and its value must land.
        let line = 0x8002_0000i64;
        let (code, sys) = run_cross_hart_sc(line, line + 128);
        assert_eq!(code, Some(0x007), "SC succeeds (0) and stores 7");
        assert_eq!(sys.cores[0].perf.sc_successes, 1);
        assert_eq!(sys.cores[0].perf.sc_failures, 0);
    }

    #[test]
    fn fused_ops_commit_correctly() {
        // lui+addi and slli+add patterns fused (NH config has fusion on).
        let (code, sys) = run_program(
            |a| {
                a.lui(T0, 0x12345000);
                a.addi(T0, T0, 0x678);
                a.li(T1, 3);
                a.li(T2, 100);
                a.slli(T3, T1, 2);
                a.add(T3, T3, T2); // sh2add shape: 3*4+100 = 112
                a.sub(A0, T0, T3);
                a.ebreak();
            },
            50_000,
        );
        assert_eq!(code, Some(0x12345678 - 112));
        assert!(sys.cores[0].perf.fused_pairs > 0, "fusion must trigger");
    }

    #[test]
    fn move_elimination_triggers() {
        let (code, sys) = run_program(
            |a| {
                a.li(T0, 77);
                a.mv(T1, T0);
                a.mv(T2, T1);
                a.mv(A0, T2);
                a.ebreak();
            },
            50_000,
        );
        assert_eq!(code, Some(77));
        assert!(sys.cores[0].perf.moves_eliminated > 0);
    }
}
