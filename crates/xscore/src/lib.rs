//! A cycle-level model of XIANGSHAN, the superscalar out-of-order RISC-V
//! processor of the paper (§IV) — the DUT of this reproduction.
//!
//! The model implements the Fig. 10 micro-architecture at stage
//! granularity: a decoupled BPU (uBTB / BTB / TAGE-SC / ITTAGE / RAS) in
//! front of the IFU, 6-wide decode with macro-op fusion, rename with
//! reference-counted move elimination, a 192/256-entry ROB, distributed
//! issue queues with the AGE or PUBS policy, ALU/MDU/FMA/FMISC pipelines,
//! a load/store unit with store-to-load forwarding, memory-order
//! violation recovery and a lazily draining store buffer, two-level TLBs
//! with a timed page walker, and the coherent cache hierarchy from the
//! `uncore` crate. Both tape-out parameter sets of Table II are provided
//! as presets ([`XsConfig::yqh`], [`XsConfig::nh`]).
//!
//! # Example
//!
//! ```
//! use riscv_isa::asm::{reg::*, Asm};
//! use xscore::{XsConfig, XsSystem};
//!
//! let mut a = Asm::new(0x8000_0000);
//! a.li(A0, 42);
//! a.ebreak();
//! let program = a.assemble();
//!
//! let mut sys = XsSystem::new(XsConfig::yqh(), &program);
//! assert_eq!(sys.run(100_000), Some(42));
//! ```

pub mod bpu;
pub mod config;
pub mod core;
pub mod issue;
pub mod lifecycle;
pub mod lsu;
pub mod perf;
pub mod prf;
pub mod rob;
pub mod system;
pub mod tage;
pub mod tlbs;
pub mod uop;

pub use config::{InjectedBug, IssuePolicy, MemoryModel, XsConfig};
pub use core::{Core, CycleOutput};
pub use lifecycle::{
    render_gap_summary, render_o3pipeview, render_waterfall, LifeStamps, Lifecycle,
    LifecycleDigest, LifecycleRing, SquashCause, LIFECYCLE_RING_CAP,
};
pub use perf::{CpiStack, PerfCounters};
pub use system::XsSystem;
pub use uop::{CommitEvent, CommitMem, SbufferDrainEvent};
