//! TAGE-SC conditional branch direction predictor.
//!
//! A 4-table TAGE with geometric history lengths plus a bimodal base
//! predictor and a small statistical corrector (SC), matching the
//! "4-table 16K-entry TAGE-SC" of paper §IV-A. The SC sums signed
//! per-history counters and overrides TAGE when confident.

/// Provider metadata returned with each prediction, needed for update.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TagePred {
    /// Predicted direction.
    pub taken: bool,
    /// Providing table (4 = bimodal base).
    pub provider: usize,
    /// Index used in the provider.
    pub index: usize,
    /// The alternate prediction (used for allocation decisions).
    pub alt_taken: bool,
    /// Provider counter was weak (|ctr| low) — drives PUBS confidence.
    pub weak: bool,
    /// Global history at prediction time (for update).
    pub ghist: u64,
}

#[derive(Debug, Clone, Copy, Default)]
struct TageEntry {
    tag: u16,
    ctr: i8, // -4..=3
    useful: u8,
}

/// The TAGE-SC predictor.
#[derive(Debug, Clone)]
pub struct TageSc {
    base: Vec<i8>, // bimodal 2-bit counters
    tables: [Vec<TageEntry>; 4],
    hist_lens: [u32; 4],
    entries: usize,
    sc: Vec<i8>, // statistical corrector counters
    sc_threshold: i32,
    tick: u64,
}

const BASE_BITS: usize = 12;

impl TageSc {
    /// Create a predictor with `entries` per tagged table.
    pub fn new(entries: usize) -> Self {
        let entries = entries.next_power_of_two();
        TageSc {
            base: vec![0; 1 << BASE_BITS],
            tables: std::array::from_fn(|_| vec![TageEntry::default(); entries]),
            hist_lens: [8, 16, 32, 64],
            entries,
            sc: vec![0; 4096],
            sc_threshold: 6,
            tick: 0,
        }
    }

    fn fold(hist: u64, len: u32, bits: u32) -> u64 {
        let mut h = hist & (u64::MAX >> (64 - len.min(64)));
        let mut f = 0u64;
        while h != 0 {
            f ^= h & ((1 << bits) - 1);
            h >>= bits;
        }
        f
    }

    fn index(&self, pc: u64, ghist: u64, table: usize) -> usize {
        let bits = self.entries.trailing_zeros();
        let folded = Self::fold(ghist, self.hist_lens[table], bits);
        ((pc >> 1) ^ (pc >> 5) ^ folded ^ ((table as u64) << 3)) as usize & (self.entries - 1)
    }

    fn tag(&self, pc: u64, ghist: u64, table: usize) -> u16 {
        let folded = Self::fold(ghist, self.hist_lens[table], 9);
        (((pc >> 1) ^ (pc >> 9) ^ (folded << 1)) & 0x1ff) as u16 | 0x200
    }

    fn base_index(&self, pc: u64) -> usize {
        ((pc >> 1) as usize) & ((1 << BASE_BITS) - 1)
    }

    fn sc_index(&self, pc: u64, ghist: u64) -> usize {
        (((pc >> 1) ^ ghist) as usize) & (self.sc.len() - 1)
    }

    /// Predict the direction of the branch at `pc` under global history
    /// `ghist`.
    pub fn predict(&self, pc: u64, ghist: u64) -> TagePred {
        let mut provider = 4usize;
        let mut index = self.base_index(pc);
        let mut taken = self.base[index] >= 0;
        let mut alt_taken = taken;
        let mut weak = self.base[index] == 0 || self.base[index] == -1;
        // Longest matching history wins.
        for t in (0..4).rev() {
            let i = self.index(pc, ghist, t);
            let e = &self.tables[t][i];
            if e.tag == self.tag(pc, ghist, t) {
                if provider == 4 {
                    provider = t;
                    index = i;
                    alt_taken = taken;
                    taken = e.ctr >= 0;
                    weak = e.ctr == 0 || e.ctr == -1;
                } else {
                    break;
                }
            }
        }
        // Statistical corrector: override a weak TAGE prediction when the
        // SC counter is confident in the other direction.
        let sc_ctr = self.sc[self.sc_index(pc, ghist)] as i32;
        if weak && sc_ctr.abs() >= self.sc_threshold {
            taken = sc_ctr >= 0;
        }
        TagePred {
            taken,
            provider,
            index,
            alt_taken,
            weak,
            ghist,
        }
    }

    /// Train on the resolved outcome.
    pub fn update(&mut self, pc: u64, pred: TagePred, taken: bool) {
        self.tick += 1;
        let ghist = pred.ghist;
        // Base predictor always trains.
        let bi = self.base_index(pc);
        self.base[bi] = bump(self.base[bi], taken, 1);
        // Provider trains.
        if pred.provider < 4 {
            let e = &mut self.tables[pred.provider][pred.index];
            e.ctr = bump(e.ctr, taken, 3);
            if pred.taken != pred.alt_taken {
                // Provider was decisive: adjust usefulness.
                if pred.taken == taken {
                    e.useful = (e.useful + 1).min(3);
                } else {
                    e.useful = e.useful.saturating_sub(1);
                }
            }
        }
        // SC trains on every outcome.
        let si = self.sc_index(pc, ghist);
        self.sc[si] = bump(self.sc[si], taken, 31);
        // Allocate a longer-history entry on a misprediction.
        if pred.taken != taken && pred.provider != 0 {
            let start = if pred.provider == 4 { 0 } else { 0.max(pred.provider as i64 - 1) as usize };
            let mut allocated = false;
            for t in start..4 {
                if pred.provider < 4 && t >= pred.provider {
                    break;
                }
                let i = self.index(pc, ghist, t);
                if self.tables[t][i].useful == 0 {
                    self.tables[t][i] = TageEntry {
                        tag: self.tag(pc, ghist, t),
                        ctr: if taken { 0 } else { -1 },
                        useful: 0,
                    };
                    allocated = true;
                    break;
                }
            }
            if !allocated && self.tick % 256 == 0 {
                // Periodically decay usefulness so allocation can proceed.
                for t in &mut self.tables {
                    for e in t.iter_mut() {
                        e.useful = e.useful.saturating_sub(1);
                    }
                }
            }
        }
    }
}

#[inline]
fn bump(ctr: i8, up: bool, max: i8) -> i8 {
    if up {
        (ctr + 1).min(max)
    } else {
        (ctr - 1).max(-max - 1)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn train(t: &mut TageSc, pc: u64, pattern: &[bool], reps: usize) -> f64 {
        let mut ghist = 0u64;
        let mut correct = 0;
        let mut total = 0;
        for _ in 0..reps {
            for &taken in pattern {
                let p = t.predict(pc, ghist);
                if p.taken == taken {
                    correct += 1;
                }
                total += 1;
                t.update(pc, p, taken);
                ghist = (ghist << 1) | taken as u64;
            }
        }
        correct as f64 / total as f64
    }

    #[test]
    fn learns_always_taken() {
        let mut t = TageSc::new(512);
        let acc = train(&mut t, 0x8000_0080, &[true], 200);
        assert!(acc > 0.95, "accuracy {acc}");
    }

    #[test]
    fn learns_alternating_pattern() {
        let mut t = TageSc::new(512);
        // T N T N ... requires 1 bit of history — trivial for TAGE.
        let acc = train(&mut t, 0x8000_0100, &[true, false], 400);
        assert!(acc > 0.9, "accuracy {acc}");
    }

    #[test]
    fn learns_long_period_pattern() {
        let mut t = TageSc::new(1024);
        // Loop branch: taken 19 times, not-taken once (period 20 needs
        // longer history tables).
        let mut pattern = vec![true; 19];
        pattern.push(false);
        let acc = train(&mut t, 0x8000_0200, &pattern, 300);
        assert!(acc > 0.9, "accuracy {acc}");
    }

    #[test]
    fn distinguishes_branches() {
        let mut t = TageSc::new(512);
        let a = train(&mut t, 0x8000_0300, &[true], 100);
        let b = train(&mut t, 0x8000_0340, &[false], 100);
        assert!(a > 0.9 && b > 0.9);
    }

    #[test]
    fn weak_flag_reflects_confidence() {
        let mut t = TageSc::new(512);
        let pc = 0x8000_0400;
        // Untrained: weak.
        assert!(t.predict(pc, 0).weak);
        train(&mut t, pc, &[true], 100);
        assert!(!t.predict(pc, u64::MAX >> 1).weak || !t.predict(pc, 0).weak);
    }
}
