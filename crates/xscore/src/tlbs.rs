//! L1 TLBs, the unified second-level TLB, and the page-table walker's
//! timing model.
//!
//! Faithful to the behavior the paper's Fig. 3 diff-rule depends on: the
//! TLB caches *walk results*, including results derived from stale or
//! invalid PTEs, until an `sfence.vma` flush. Whether a given walk
//! observed a not-yet-drained PTE store is therefore visible to DiffTest
//! as a DUT-only page fault.

use riscv_isa::csr::CsrFile;
use riscv_isa::mem::PhysMem;
use riscv_isa::mmu::{self, AccessType};
use riscv_isa::trap::Exception;

/// A cached translation (possibly a cached *fault*).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TlbEntry {
    /// Virtual page number.
    pub vpn: u64,
    /// Mapping level (0 = 4 KiB, 1 = 2 MiB, 2 = 1 GiB).
    pub level: u8,
    /// Leaf PTE observed by the walk (0 when the walk faulted).
    pub pte: u64,
    /// The walk faulted; accesses through this entry fault too.
    pub faulted: bool,
    /// LRU timestamp.
    pub lru: u64,
    /// ASID-free validity.
    pub valid: bool,
}

/// A fully associative TLB with LRU replacement.
#[derive(Debug, Clone)]
pub struct Tlb {
    entries: Vec<TlbEntry>,
    clock: u64,
    /// Hits.
    pub hits: u64,
    /// Misses.
    pub misses: u64,
}

impl Tlb {
    /// Create a TLB with `n` entries.
    pub fn new(n: usize) -> Self {
        Tlb {
            entries: vec![
                TlbEntry {
                    vpn: 0,
                    level: 0,
                    pte: 0,
                    faulted: false,
                    lru: 0,
                    valid: false,
                };
                n
            ],
            clock: 0,
            hits: 0,
            misses: 0,
        }
    }

    fn matches(e: &TlbEntry, vpn: u64) -> bool {
        if !e.valid {
            return false;
        }
        let shift = 9 * e.level as u64;
        (e.vpn >> shift) == (vpn >> shift)
    }

    /// Look up a virtual page number.
    pub fn lookup(&mut self, vpn: u64) -> Option<TlbEntry> {
        self.clock += 1;
        for e in &mut self.entries {
            if Self::matches(e, vpn) {
                e.lru = self.clock;
                self.hits += 1;
                return Some(*e);
            }
        }
        self.misses += 1;
        None
    }

    /// Install a walk result.
    pub fn fill(&mut self, vpn: u64, level: u8, pte: u64, faulted: bool) {
        self.clock += 1;
        let victim = self
            .entries
            .iter_mut()
            .min_by_key(|e| if e.valid { e.lru } else { 0 })
            .expect("TLB has entries");
        *victim = TlbEntry {
            vpn,
            level,
            pte,
            faulted,
            lru: self.clock,
            valid: true,
        };
    }

    /// Flush everything (`sfence.vma` / satp write).
    pub fn flush(&mut self) {
        for e in &mut self.entries {
            e.valid = false;
        }
    }
}

/// Result of an MMU request from the core.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MmuResult {
    /// Translation complete.
    Done {
        /// Physical address.
        pa: u64,
        /// Extra cycles charged (0 for an L1 TLB hit).
        latency: u64,
    },
    /// Translation fault.
    Fault {
        /// The exception to raise.
        cause: Exception,
        /// Cycles spent before the fault was known.
        latency: u64,
    },
}

/// The MMU of one core: ITLB + DTLB + shared STLB + walker timing.
#[derive(Debug, Clone)]
pub struct CoreMmu {
    /// Instruction-side L1 TLB.
    pub itlb: Tlb,
    /// Data-side L1 TLB.
    pub dtlb: Tlb,
    /// Unified second-level TLB.
    pub stlb: Tlb,
    /// Latency of an STLB hit.
    pub stlb_latency: u64,
    /// Latency per page-walk level.
    pub ptw_level_latency: u64,
    /// Completed walks (statistics).
    pub walks: u64,
}

impl CoreMmu {
    /// Build from configuration knobs.
    pub fn new(itlb: usize, dtlb: usize, stlb: usize, stlb_latency: u64, ptw_level_latency: u64) -> Self {
        CoreMmu {
            itlb: Tlb::new(itlb),
            dtlb: Tlb::new(dtlb),
            stlb: Tlb::new(stlb),
            stlb_latency,
            ptw_level_latency,
            walks: 0,
        }
    }

    /// Flush all TLBs.
    pub fn flush(&mut self) {
        self.itlb.flush();
        self.dtlb.flush();
        self.stlb.flush();
    }

    /// Translate `va` for `access`, walking the page table in `mem` on a
    /// miss. The walk reads *the memory image as currently visible to the
    /// PTW* — not the store buffer — which is exactly the Fig. 3 window.
    pub fn translate<M: PhysMem>(
        &mut self,
        mem: &mut M,
        csr: &CsrFile,
        va: u64,
        access: AccessType,
    ) -> MmuResult {
        if !mmu::translation_active(csr, access) {
            return MmuResult::Done { pa: va, latency: 0 };
        }
        let vpn = va >> 12;
        let l1 = if access == AccessType::Fetch {
            &mut self.itlb
        } else {
            &mut self.dtlb
        };
        if let Some(e) = l1.lookup(vpn) {
            return finish(csr, va, e, 0, access);
        }
        // STLB.
        if let Some(e) = self.stlb.lookup(vpn) {
            let l1 = if access == AccessType::Fetch {
                &mut self.itlb
            } else {
                &mut self.dtlb
            };
            l1.fill(e.vpn, e.level, e.pte, e.faulted);
            return finish(csr, va, e, self.stlb_latency, access);
        }
        // Page walk.
        self.walks += 1;
        match mmu::walk(mem, csr.satp, va, access) {
            Ok(t) => {
                let latency = self.stlb_latency + self.ptw_level_latency * t.steps.len() as u64;
                let e = TlbEntry {
                    vpn,
                    level: t.level,
                    pte: t.pte,
                    faulted: false,
                    lru: 0,
                    valid: true,
                };
                self.stlb.fill(vpn, t.level, t.pte, false);
                let l1 = if access == AccessType::Fetch {
                    &mut self.itlb
                } else {
                    &mut self.dtlb
                };
                l1.fill(vpn, t.level, t.pte, false);
                // Set A/D bits in memory as the hardware walker would.
                if let Some(last) = t.steps.last() {
                    let mut pte = t.pte | riscv_isa::mmu::pte::A;
                    if access == AccessType::Store {
                        pte |= riscv_isa::mmu::pte::D;
                    }
                    mem.write_uint(last.pte_addr, 8, pte);
                }
                finish(csr, va, e, latency, access)
            }
            Err(cause) => {
                let latency = self.stlb_latency + self.ptw_level_latency;
                // Cache the faulting walk in the L1 TLB: "invalid PTEs are
                // allowed to be cached in TLBs" (Fig. 3).
                let l1 = if access == AccessType::Fetch {
                    &mut self.itlb
                } else {
                    &mut self.dtlb
                };
                l1.fill(vpn, 0, 0, true);
                MmuResult::Fault { cause, latency }
            }
        }
    }
}

fn finish(csr: &CsrFile, va: u64, e: TlbEntry, latency: u64, access: AccessType) -> MmuResult {
    if e.faulted {
        return MmuResult::Fault {
            cause: access.page_fault(),
            latency,
        };
    }
    let eff = mmu::effective_privilege(csr, access);
    if let Err(cause) = mmu::check_leaf_permissions(csr, eff, e.pte, access) {
        return MmuResult::Fault { cause, latency };
    }
    let offset_mask = (1u64 << (12 + 9 * e.level)) - 1;
    let ppn = e.pte >> 10 & 0xfff_ffff_ffff;
    let pa = ((ppn << 12) & !offset_mask) | (va & offset_mask);
    MmuResult::Done { pa, latency }
}

#[cfg(test)]
mod tests {
    use super::*;
    use riscv_isa::csr::{addr, Privilege};
    use riscv_isa::mem::SparseMemory;
    use riscv_isa::mmu::{make_pte, pte};

    fn setup() -> (SparseMemory, CsrFile, CoreMmu) {
        let mut mem = SparseMemory::new();
        let root = 0x8100_0000u64;
        // Map VA 0x4000_1000 -> PA 0x8020_0000 (RWX, user).
        let va: u64 = 0x4000_1000;
        let (vpn2, vpn1, vpn0) = ((va >> 30) & 0x1ff, (va >> 21) & 0x1ff, (va >> 12) & 0x1ff);
        mem.write_uint(root + vpn2 * 8, 8, make_pte((root + 0x1000) >> 12, pte::V));
        mem.write_uint(root + 0x1000 + vpn1 * 8, 8, make_pte((root + 0x2000) >> 12, pte::V));
        mem.write_uint(
            root + 0x2000 + vpn0 * 8,
            8,
            make_pte(0x8020_0000 >> 12, pte::V | pte::R | pte::W | pte::X | pte::U),
        );
        let mut csr = CsrFile::new(0);
        csr.write(addr::SATP, (8 << 60) | (root >> 12)).unwrap();
        csr.privilege = Privilege::User;
        let mmu = CoreMmu::new(4, 4, 16, 3, 10);
        (mem, csr, mmu)
    }

    #[test]
    fn walk_then_hit() {
        let (mut mem, csr, mut mmu) = setup();
        let r = mmu.translate(&mut mem, &csr, 0x4000_1abc, AccessType::Load);
        match r {
            MmuResult::Done { pa, latency } => {
                assert_eq!(pa, 0x8020_0abc);
                assert_eq!(latency, 3 + 3 * 10, "walk charges per-level latency");
            }
            other => panic!("{other:?}"),
        }
        // Second access: L1 DTLB hit, zero latency.
        let r = mmu.translate(&mut mem, &csr, 0x4000_1def, AccessType::Load);
        assert_eq!(
            r,
            MmuResult::Done {
                pa: 0x8020_0def,
                latency: 0
            }
        );
        assert_eq!(mmu.walks, 1);
    }

    #[test]
    fn stale_fault_is_cached_until_flush() {
        let (mut mem, csr, mut mmu) = setup();
        // Unmapped page: walk faults and the fault is cached.
        let r = mmu.translate(&mut mem, &csr, 0x4000_5000, AccessType::Load);
        assert!(matches!(r, MmuResult::Fault { cause: Exception::LoadPageFault, .. }));
        let walks_before = mmu.walks;
        // Map the page NOW (simulating the kernel's PTE store landing).
        let root = 0x8100_0000u64;
        let va: u64 = 0x4000_5000;
        let vpn0 = (va >> 12) & 0x1ff;
        mem.write_uint(
            root + 0x2000 + vpn0 * 8,
            8,
            make_pte(0x8030_0000 >> 12, pte::V | pte::R | pte::U),
        );
        // Still faults: the TLB cached the faulting walk (Fig. 3).
        let r = mmu.translate(&mut mem, &csr, 0x4000_5000, AccessType::Load);
        assert!(matches!(r, MmuResult::Fault { .. }), "cached fault persists");
        assert_eq!(mmu.walks, walks_before, "no re-walk before sfence");
        // sfence.vma flushes; the new mapping is now visible.
        mmu.flush();
        let r = mmu.translate(&mut mem, &csr, 0x4000_5000, AccessType::Load);
        assert!(matches!(r, MmuResult::Done { pa: 0x8030_0000, .. }), "{r:?}");
    }

    #[test]
    fn permission_fault_from_cached_entry() {
        let (mut mem, mut csr, mut mmu) = setup();
        // Fill via load, then attempt a store to a read-only page.
        let root = 0x8100_0000u64;
        let vpn0 = (0x4000_1000u64 >> 12) & 0x1ff;
        mem.write_uint(
            root + 0x2000 + vpn0 * 8,
            8,
            make_pte(0x8020_0000 >> 12, pte::V | pte::R | pte::U),
        );
        let r = mmu.translate(&mut mem, &csr, 0x4000_1000, AccessType::Load);
        assert!(matches!(r, MmuResult::Done { .. }));
        let r = mmu.translate(&mut mem, &csr, 0x4000_1000, AccessType::Store);
        assert!(matches!(
            r,
            MmuResult::Fault {
                cause: Exception::StorePageFault,
                ..
            }
        ));
        // Fetch from a non-executable page faults too.
        csr.privilege = Privilege::User;
        let r = mmu.translate(&mut mem, &csr, 0x4000_1000, AccessType::Fetch);
        assert!(matches!(
            r,
            MmuResult::Fault {
                cause: Exception::InstPageFault,
                ..
            }
        ));
    }

    #[test]
    fn bare_mode_is_free() {
        let mut mem = SparseMemory::new();
        let csr = CsrFile::new(0);
        let mut mmu = CoreMmu::new(4, 4, 16, 3, 10);
        let r = mmu.translate(&mut mem, &csr, 0x8000_1234, AccessType::Fetch);
        assert_eq!(
            r,
            MmuResult::Done {
                pa: 0x8000_1234,
                latency: 0
            }
        );
    }

    #[test]
    fn lru_eviction() {
        let (mut mem, csr, mut mmu) = setup();
        // Touch the mapped page, then flood the 4-entry DTLB with faults.
        let r = mmu.translate(&mut mem, &csr, 0x4000_1000, AccessType::Load);
        assert!(matches!(r, MmuResult::Done { .. }));
        for i in 0..8u64 {
            let _ = mmu.translate(&mut mem, &csr, 0x5000_0000 + i * 0x1000, AccessType::Load);
        }
        // The original entry was evicted from the DTLB but the STLB keeps
        // it: next access pays the STLB latency, not a walk.
        let walks = mmu.walks;
        let r = mmu.translate(&mut mem, &csr, 0x4000_1000, AccessType::Load);
        match r {
            MmuResult::Done { latency, .. } => assert_eq!(latency, 3),
            other => panic!("{other:?}"),
        }
        assert_eq!(mmu.walks, walks, "STLB hit avoids the walk");
    }
}
