//! Micro-operations, macro-op fusion, and commit events (the probe
//! payloads the design exposes to DiffTest, paper §III-B3).

use crate::bpu::BranchPrediction;
use riscv_isa::exec::int_compute;
use riscv_isa::op::{DecodedInst, Op};
use riscv_isa::trap::Trap;
use serde::{Deserialize, Serialize};

/// A register source operand: class (fp?) and architectural index.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SrcReg {
    /// Floating-point register class.
    pub fp: bool,
    /// Architectural register index.
    pub idx: u8,
}

/// A decoded (possibly fused) micro-operation flowing down the pipeline.
#[derive(Debug, Clone)]
pub struct Uop {
    /// PC of the (first) instruction.
    pub pc: u64,
    /// The (first) instruction.
    pub inst: DecodedInst,
    /// Second instruction of a fused macro-op pair.
    pub fused: Option<DecodedInst>,
    /// Branch prediction attached at fetch (control flow only).
    pub pred: Option<BranchPrediction>,
    /// Predicted next PC (what fetch continued with).
    pub predicted_npc: u64,
    /// Source registers (up to 3).
    pub srcs: [Option<SrcReg>; 3],
    /// Destination register, if any.
    pub dest: Option<SrcReg>,
}

impl Uop {
    /// Build a uop from one decoded instruction.
    ///
    /// Source slots are positional — `srcs[0]` is rs1, `srcs[1]` rs2,
    /// `srcs[2]` rs3 — with `None` for an unused operand or the integer
    /// zero register. Everything downstream (rename, wakeup, execute)
    /// relies on the position, so an x0 operand must leave a hole, not
    /// compact the array: `sltu rd, x0, rs2` reads its one source as
    /// operand *two*.
    pub fn new(pc: u64, inst: DecodedInst, pred: Option<BranchPrediction>, npc: u64) -> Self {
        let mut srcs = [None; 3];
        let slot = |fp: bool, idx: u8| {
            if !fp && idx == 0 {
                None
            } else {
                Some(SrcReg { fp, idx })
            }
        };
        if uses_rs1(&inst) {
            srcs[0] = slot(inst.rs1_is_fpr(), inst.rs1);
        }
        if uses_rs2(&inst) {
            srcs[1] = slot(inst.rs2_is_fpr(), inst.rs2);
        }
        if inst.is_fma() {
            srcs[2] = slot(true, inst.rs3);
        }
        let dest = if inst.writes_fpr() {
            Some(SrcReg {
                fp: true,
                idx: inst.rd,
            })
        } else if inst.writes_gpr() {
            Some(SrcReg {
                fp: false,
                idx: inst.rd,
            })
        } else {
            None
        };
        Uop {
            pc,
            inst,
            fused: None,
            pred,
            predicted_npc: npc,
            srcs,
            dest,
        }
    }

    /// Total encoded length in bytes (covers fused pairs).
    pub fn len(&self) -> u64 {
        self.inst.len as u64 + self.fused.map_or(0, |f| f.len as u64)
    }

    /// Architectural next PC for sequential flow.
    pub fn fallthrough(&self) -> u64 {
        self.pc + self.len()
    }

    /// True for a register-move eligible for move elimination:
    /// `addi rd, rs, 0` / `add rd, rs, x0` with integer registers.
    pub fn is_reg_move(&self) -> bool {
        if self.fused.is_some() {
            return false;
        }
        match self.inst.op {
            Op::Addi => self.inst.imm == 0 && self.inst.rd != 0 && self.inst.rs1 != 0,
            Op::Add => {
                self.inst.rd != 0
                    && ((self.inst.rs1 == 0) != (self.inst.rs2 == 0))
            }
            _ => false,
        }
    }

    /// The moved-from source of a register move.
    pub fn move_src(&self) -> u8 {
        debug_assert!(self.is_reg_move());
        if self.inst.op == Op::Add && self.inst.rs1 == 0 {
            self.inst.rs2
        } else {
            self.inst.rs1
        }
    }
}

fn uses_rs1(d: &DecodedInst) -> bool {
    !matches!(
        d.op,
        Op::Lui | Op::Auipc | Op::Jal | Op::Ecall | Op::Ebreak | Op::Mret | Op::Sret | Op::Wfi
            | Op::Fence | Op::FenceI | Op::Csrrwi | Op::Csrrsi | Op::Csrrci | Op::Illegal
    )
}

fn uses_rs2(d: &DecodedInst) -> bool {
    use Op::*;
    d.is_branch()
        || matches!(d.op, Sb | Sh | Sw | Sd | Fsw | Fsd | ScW | ScD)
        || d.is_amo()
        || matches!(d.op, SfenceVma)
        || (d.rs2_is_fpr())
        || matches!(
            d.op,
            Add | Sub | Sll | Slt | Sltu | Xor | Srl | Sra | Or | And | Addw | Subw | Sllw
                | Srlw | Sraw | Mul | Mulh | Mulhsu | Mulhu | Div | Divu | Rem | Remu | Mulw
                | Divw | Divuw | Remw | Remuw | Sh1add | Sh2add | Sh3add | AddUw | Sh1addUw
                | Sh2addUw | Sh3addUw | Andn | Orn | Xnor | Max | Min | Maxu | Minu | Rol | Ror
                | Rolw | Rorw
        )
}

/// Try to fuse two consecutive decoded instructions into one macro-op
/// (paper §IV-A: "certain consecutive arithmetic instructions can be
/// fused into a single micro-operation").
///
/// Patterns (all require the second instruction to overwrite and consume
/// the first's destination):
///
/// - `lui rd, hi` + `addi rd, rd, lo` — load-immediate pair,
/// - `slli rd, rs1, {1,2,3}` + `add rd, rd, rs2` — shXadd shape,
/// - `slli rd, rs, 32` + `srli rd, rd, 32` — zero-extend word.
pub fn try_fuse(a: &DecodedInst, b: &DecodedInst) -> bool {
    if a.rd == 0 || a.rd != b.rd {
        return false;
    }
    match (a.op, b.op) {
        (Op::Lui, Op::Addi) => b.rs1 == a.rd,
        (Op::Slli, Op::Add) => {
            (1..=3).contains(&a.imm) && (b.rs1 == a.rd || b.rs2 == a.rd) && b.rs1 != b.rs2
        }
        (Op::Slli, Op::Srli) => a.imm == 32 && b.imm == 32 && b.rs1 == a.rd,
        _ => false,
    }
}

/// Execute a fused pair given the three possible source values
/// (`v_rs1_a`: first inst rs1; `v_other`: the second inst's non-chained
/// operand).
pub fn exec_fused(a: &DecodedInst, b: &DecodedInst, v_rs1_a: u64, v_other: u64) -> u64 {
    let mid = match a.op {
        Op::Lui => a.imm as u64,
        _ => int_compute(a.op, v_rs1_a, a.imm as u64).expect("fusible first op"),
    };
    match b.op {
        Op::Addi => int_compute(Op::Addi, mid, b.imm as u64).expect("addi"),
        Op::Srli => int_compute(Op::Srli, mid, b.imm as u64).expect("srli"),
        Op::Add => int_compute(Op::Add, mid, v_other).expect("add"),
        _ => unreachable!("non-fusible second op"),
    }
}

/// Build the fused uop from a pair (assumes [`try_fuse`] returned true).
pub fn fuse(pc: u64, a: DecodedInst, b: DecodedInst, npc: u64) -> Uop {
    let mut u = Uop::new(pc, a, None, npc);
    u.fused = Some(b);
    // Positional sources: slot 0 is a.rs1 (absent for lui), slot 1 is
    // b's non-chained operand — `exec_fused` reads them by position.
    let mut srcs = [None; 3];
    if a.op != Op::Lui && a.rs1 != 0 {
        srcs[0] = Some(SrcReg {
            fp: false,
            idx: a.rs1,
        });
    }
    if b.op == Op::Add {
        let other = if b.rs1 == a.rd { b.rs2 } else { b.rs1 };
        if other != 0 {
            srcs[1] = Some(SrcReg {
                fp: false,
                idx: other,
            });
        }
    }
    u.srcs = srcs;
    u.dest = Some(SrcReg {
        fp: false,
        idx: a.rd,
    });
    u
}

/// Memory access details of a committed instruction (probe payload).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct CommitMem {
    /// Virtual address.
    pub vaddr: u64,
    /// Physical address.
    pub paddr: u64,
    /// Size in bytes.
    pub size: u64,
    /// Store?
    pub is_store: bool,
    /// Loaded value / stored data.
    pub value: u64,
    /// MMIO access (DiffTest skips value comparison).
    pub mmio: bool,
}

/// One committed instruction, as reported by the instruction-commit probe.
///
/// This mirrors the paper's per-instruction probe that is "instantiated
/// more than once in a superscalar processor": the commit stage emits up
/// to `commit_width` of these per cycle.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CommitEvent {
    /// Hart index.
    pub hart: usize,
    /// PC.
    pub pc: u64,
    /// The instruction.
    pub inst: DecodedInst,
    /// The second instruction of a fused pair, if any (the macro-fusion
    /// diff-rule steps the REF twice for these).
    pub fused: Option<DecodedInst>,
    /// Destination write (fp?, arch index, value).
    pub wb: Option<(bool, u8, u64)>,
    /// Memory access.
    pub mem: Option<CommitMem>,
    /// Trap taken by/instead of this instruction.
    pub trap: Option<Trap>,
    /// An SC that failed (including micro-architectural timeouts — the
    /// §III-B2c diff-rule source).
    pub sc_failed: bool,
    /// The hart halted at this instruction.
    pub halted: bool,
    /// Cycle of commit.
    pub cycle: u64,
}

/// A committed store leaving the store buffer for the cache hierarchy —
/// the event feeding DiffTest's Global Memory (paper §III-B2b).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct SbufferDrainEvent {
    /// Hart index.
    pub hart: usize,
    /// Physical address.
    pub paddr: u64,
    /// Size in bytes.
    pub size: u64,
    /// Data written.
    pub data: u64,
    /// Cycle the store entered the cache hierarchy.
    pub cycle: u64,
}

#[cfg(test)]
mod tests {
    use super::*;
    use riscv_isa::op::Op;

    fn di(op: Op, rd: u8, rs1: u8, rs2: u8, imm: i64) -> DecodedInst {
        DecodedInst {
            op,
            rd,
            rs1,
            rs2,
            imm,
            len: 4,
            ..Default::default()
        }
    }

    #[test]
    fn src_extraction() {
        let u = Uop::new(0, di(Op::Add, 3, 1, 2, 0), None, 4);
        assert_eq!(u.srcs[0], Some(SrcReg { fp: false, idx: 1 }));
        assert_eq!(u.srcs[1], Some(SrcReg { fp: false, idx: 2 }));
        assert_eq!(u.dest, Some(SrcReg { fp: false, idx: 3 }));

        let u = Uop::new(0, di(Op::Lui, 3, 0, 0, 0x1000), None, 4);
        assert_eq!(u.srcs[0], None, "lui has no register sources");

        let u = Uop::new(0, di(Op::Sd, 0, 2, 7, 8), None, 4);
        assert_eq!(u.srcs[0], Some(SrcReg { fp: false, idx: 2 }));
        assert_eq!(u.srcs[1], Some(SrcReg { fp: false, idx: 7 }));
        assert_eq!(u.dest, None);

        let fma = DecodedInst {
            op: Op::FmaddD,
            rd: 1,
            rs1: 2,
            rs2: 3,
            rs3: 4,
            len: 4,
            ..Default::default()
        };
        let u = Uop::new(0, fma, None, 4);
        assert_eq!(u.srcs[2], Some(SrcReg { fp: true, idx: 4 }));
        assert_eq!(u.dest, Some(SrcReg { fp: true, idx: 1 }));
    }

    #[test]
    fn move_detection() {
        assert!(Uop::new(0, di(Op::Addi, 3, 5, 0, 0), None, 4).is_reg_move());
        assert!(!Uop::new(0, di(Op::Addi, 3, 5, 0, 1), None, 4).is_reg_move());
        assert!(!Uop::new(0, di(Op::Addi, 0, 5, 0, 0), None, 4).is_reg_move());
        let mv = Uop::new(0, di(Op::Add, 3, 0, 5, 0), None, 4);
        assert!(mv.is_reg_move());
        assert_eq!(mv.move_src(), 5);
    }

    #[test]
    fn fusion_patterns() {
        let lui = di(Op::Lui, 5, 0, 0, 0x12345000);
        let addi = di(Op::Addi, 5, 5, 0, 0x678);
        assert!(try_fuse(&lui, &addi));
        assert_eq!(exec_fused(&lui, &addi, 0, 0), 0x12345678);

        let slli = di(Op::Slli, 6, 7, 0, 2);
        let add = di(Op::Add, 6, 6, 8, 0);
        assert!(try_fuse(&slli, &add));
        assert_eq!(exec_fused(&slli, &add, 3, 100), 112); // (3<<2)+100

        let slli32 = di(Op::Slli, 6, 7, 0, 32);
        let srli32 = di(Op::Srli, 6, 6, 0, 32);
        assert!(try_fuse(&slli32, &srli32));
        assert_eq!(exec_fused(&slli32, &srli32, 0xdead_beef_1234_5678, 0), 0x1234_5678);
    }

    #[test]
    fn fusion_rejects_broken_chains() {
        let lui = di(Op::Lui, 5, 0, 0, 0x1000);
        let addi_other = di(Op::Addi, 6, 5, 0, 1); // different rd
        assert!(!try_fuse(&lui, &addi_other));
        let addi_nonchain = di(Op::Addi, 5, 4, 0, 1); // doesn't consume rd
        assert!(!try_fuse(&lui, &addi_nonchain));
        let slli4 = di(Op::Slli, 5, 7, 0, 4); // shift too large for shXadd
        let add = di(Op::Add, 5, 5, 8, 0);
        assert!(!try_fuse(&slli4, &add));
    }

    #[test]
    fn fused_uop_sources() {
        let slli = di(Op::Slli, 6, 7, 0, 2);
        let add = di(Op::Add, 6, 6, 8, 0);
        let u = fuse(0x100, slli, add, 0x108);
        assert_eq!(u.len(), 8);
        assert_eq!(u.srcs[0], Some(SrcReg { fp: false, idx: 7 }));
        assert_eq!(u.srcs[1], Some(SrcReg { fp: false, idx: 8 }));
        assert_eq!(u.dest, Some(SrcReg { fp: false, idx: 6 }));
    }
}
