//! DiffTest campaign CLI: shard a workload × config × seed matrix
//! across a worker pool and emit a machine-readable JSON report.
//!
//! ```text
//! campaign [--workloads mcf,lbm] [--configs small-nh,small-yqh]
//!          [--torture-seeds 0..8] [--workers 4] [--max-cycles 40000000]
//!          [--lightsss N] [--inject-bug mul-low-bit|addw-no-sext]
//!          [--ref arch|nemu|nemu-trace|...] [--telemetry] [--lifecycle]
//!          [--coverage] [--no-minimize] [--no-triage]
//!          [--bundle-dir DIR] [--job-timeout-ms N] [--retries N]
//!          [--retry-backoff-ms N] [--out report.json]
//! campaign --fuzz [--rounds N] [--fuzz-jobs N] [--fuzz-seed N]
//!          [--mp] [--inject-l2-race]
//!          [--corpus-dir DIR] [--configs ...] [the flags above]
//! campaign --sample --workloads k1,k2 [--configs ...]
//!          [--ref nemu-trace] [--interval N] [--max-checkpoints K]
//!          [--warmup N] [--window N] [--checkpoint-dir DIR]
//!          [--workers N] [--max-cycles N] [--lightsss N] [--out FILE]
//! ```
//!
//! The job list is the cross product of every named workload and every
//! torture seed with every config, in that order, so reports are
//! deterministic for a given command line. `--fuzz` replaces the fixed
//! matrix with a coverage-guided campaign: rounds of torture recipes
//! scheduled by coverage novelty, with the surviving corpus written to
//! `--corpus-dir` as one JSON recipe per file. `--sample` runs the
//! checkpoint farm instead: each workload is profiled on the `--ref`
//! personality, SimPoint clustering picks representative intervals
//! (checkpoints cached under `--checkpoint-dir` by content hash), and
//! one warm-up + detail-window job per checkpoint × config fans across
//! the pool, aggregating to weighted CPI in the report's `sampling`
//! section. Exit status: 0 when every job halts or samples cleanly,
//! 1 on any divergence/timeout/panic, 2 on usage errors.

use campaign::{run_fuzz, run_sampled, Campaign, FuzzOpts, JobSpec, SampleSpec, Verdict, WorkloadSource};
use minjie::AnyRef;
use workloads::TortureConfig;
use xscore::{InjectedBug, XsConfig};

fn usage(err: &str) -> ! {
    eprintln!("error: {err}");
    eprintln!(
        "usage: campaign [--workloads k1,k2] [--configs c1,c2] [--torture-seeds A..B|s1,s2]\n\
         \x20               [--workers N] [--max-cycles N] [--lightsss N]\n\
         \x20               [--inject-bug mul-low-bit|addw-no-sext] [--telemetry] [--lifecycle]\n\
         \x20               [--coverage]\n\
         \x20               [--ref NAME] [--no-minimize] [--no-triage] [--bundle-dir DIR]\n\
         \x20               [--job-timeout-ms N] [--retries N] [--retry-backoff-ms N]\n\
         \x20               [--out FILE]\n\
         \x20      campaign --fuzz [--rounds N] [--fuzz-jobs N] [--fuzz-seed N]\n\
         \x20               [--mp] [--inject-l2-race]\n\
         \x20               [--corpus-dir DIR] [--configs c1,c2] [shared flags above]\n\
         \x20      campaign --sample --workloads k1,k2 [--configs c1,c2] [--ref NAME]\n\
         \x20               [--interval N] [--max-checkpoints K] [--warmup N] [--window N]\n\
         \x20               [--checkpoint-dir DIR] [shared flags above]\n\
         kernels: {}\n\
         configs: {}\n\
         refs: {}",
        workloads::NAMES.join(", "),
        XsConfig::preset_names().join(", "),
        AnyRef::names().join(", ")
    );
    std::process::exit(2);
}

fn parse_seeds(spec: &str) -> Vec<u64> {
    if let Some((lo, hi)) = spec.split_once("..") {
        let lo: u64 = lo.parse().unwrap_or_else(|_| usage("bad seed range"));
        let hi: u64 = hi.parse().unwrap_or_else(|_| usage("bad seed range"));
        (lo..hi).collect()
    } else {
        spec.split(',')
            .filter(|s| !s.is_empty())
            .map(|s| s.parse().unwrap_or_else(|_| usage("bad seed list")))
            .collect()
    }
}

fn main() {
    let mut kernels: Vec<String> = Vec::new();
    let mut configs: Vec<String> = vec!["small-nh".into()];
    let mut seeds: Vec<u64> = Vec::new();
    let mut workers = 4usize;
    let mut max_cycles: Option<u64> = None;
    let mut lightsss: Option<u64> = None;
    let mut fuzz = false;
    let mut sample = false;
    let mut interval: Option<u64> = None;
    let mut max_checkpoints: Option<usize> = None;
    let mut warmup: Option<u64> = None;
    let mut window: Option<u64> = None;
    let mut checkpoint_dir: Option<String> = None;
    let mut rounds = 2u64;
    let mut fuzz_jobs = 8usize;
    let mut fuzz_seed = 0u64;
    let mut corpus_dir: Option<String> = None;
    let mut mp = false;
    let mut inject_l2_race = false;
    let mut coverage = false;
    let mut inject: Option<InjectedBug> = None;
    let mut ref_model: Option<String> = None;
    let mut minimize = true;
    let mut triage = true;
    let mut telemetry = false;
    let mut lifecycle = false;
    let mut bundle_dir: Option<String> = None;
    let mut job_timeout_ms: Option<u64> = None;
    let mut retries: Option<u32> = None;
    let mut retry_backoff_ms: Option<u64> = None;
    let mut out: Option<String> = None;

    let mut args = std::env::args().skip(1);
    while let Some(flag) = args.next() {
        let mut value = || {
            args.next()
                .unwrap_or_else(|| usage("missing value for flag"))
        };
        match flag.as_str() {
            "--workloads" => {
                kernels = value().split(',').map(str::to_string).collect();
            }
            "--configs" => {
                configs = value().split(',').map(str::to_string).collect();
            }
            "--torture-seeds" => seeds = parse_seeds(&value()),
            "--workers" => {
                workers = value().parse().unwrap_or_else(|_| usage("bad --workers"));
            }
            "--max-cycles" => {
                max_cycles =
                    Some(value().parse().unwrap_or_else(|_| usage("bad --max-cycles")));
            }
            "--fuzz" => fuzz = true,
            "--sample" => sample = true,
            "--interval" => {
                interval = Some(value().parse().unwrap_or_else(|_| usage("bad --interval")));
            }
            "--max-checkpoints" => {
                max_checkpoints =
                    Some(value().parse().unwrap_or_else(|_| usage("bad --max-checkpoints")));
            }
            "--warmup" => {
                warmup = Some(value().parse().unwrap_or_else(|_| usage("bad --warmup")));
            }
            "--window" => {
                window = Some(value().parse().unwrap_or_else(|_| usage("bad --window")));
            }
            "--checkpoint-dir" => checkpoint_dir = Some(value()),
            "--rounds" => {
                rounds = value().parse().unwrap_or_else(|_| usage("bad --rounds"));
            }
            "--fuzz-jobs" => {
                fuzz_jobs = value().parse().unwrap_or_else(|_| usage("bad --fuzz-jobs"));
            }
            "--fuzz-seed" => {
                fuzz_seed = value().parse().unwrap_or_else(|_| usage("bad --fuzz-seed"));
            }
            "--corpus-dir" => corpus_dir = Some(value()),
            "--mp" => mp = true,
            "--inject-l2-race" => inject_l2_race = true,
            "--coverage" => coverage = true,
            "--lightsss" => {
                lightsss = Some(value().parse().unwrap_or_else(|_| usage("bad --lightsss")));
            }
            "--inject-bug" => {
                inject = Some(match value().as_str() {
                    "mul-low-bit" => InjectedBug::MulLowBit,
                    "addw-no-sext" => InjectedBug::AddwNoSext,
                    _ => usage("unknown --inject-bug"),
                });
            }
            "--ref" => ref_model = Some(value()),
            "--telemetry" => telemetry = true,
            "--lifecycle" => lifecycle = true,
            "--no-minimize" => minimize = false,
            "--no-triage" => triage = false,
            "--bundle-dir" => bundle_dir = Some(value()),
            "--job-timeout-ms" => {
                job_timeout_ms =
                    Some(value().parse().unwrap_or_else(|_| usage("bad --job-timeout-ms")));
            }
            "--retries" => {
                retries = Some(value().parse().unwrap_or_else(|_| usage("bad --retries")));
            }
            "--retry-backoff-ms" => {
                retry_backoff_ms =
                    Some(value().parse().unwrap_or_else(|_| usage("bad --retry-backoff-ms")));
            }
            "--out" => out = Some(value()),
            "--help" | "-h" => usage("help requested"),
            other => usage(&format!("unknown flag `{other}`")),
        }
    }
    for c in &configs {
        if XsConfig::preset(c).is_none() {
            usage(&format!("unknown config preset `{c}`"));
        }
    }
    for k in &kernels {
        if !workloads::NAMES.contains(&k.as_str()) {
            usage(&format!("unknown workload `{k}`"));
        }
    }
    if let Some(r) = &ref_model {
        if !AnyRef::names().contains(&r.as_str()) {
            usage(&format!("unknown --ref `{r}`"));
        }
    }
    let report = if fuzz {
        if !kernels.is_empty() || !seeds.is_empty() {
            usage("--fuzz evolves its own recipes: drop --workloads/--torture-seeds");
        }
        let opts = FuzzOpts {
            rounds,
            jobs_per_round: fuzz_jobs,
            fuzz_seed,
            configs: configs.clone(),
            workers,
            // Fuzz jobs are deliberately short: breadth over depth.
            max_cycles: max_cycles.unwrap_or(6_000_000),
            lightsss_interval: lightsss,
            injected_bug: inject,
            minimize,
            triage,
            lifecycle,
            ref_model: ref_model.clone(),
            mp,
            inject_l2_race,
        };
        eprintln!(
            "fuzz campaign: {} rounds x {} jobs on {} workers (seed {})",
            opts.rounds, opts.jobs_per_round, opts.workers, opts.fuzz_seed
        );
        let outcome = run_fuzz(&opts);
        if let Some(f) = &outcome.report.fuzz {
            for r in &f.rounds {
                eprintln!(
                    "  round {:>2}: {} jobs, +{} features ({} cumulative, corpus {})",
                    r.round, r.jobs, r.new_features, r.cumulative_features, r.corpus_size
                );
            }
        }
        if let Some(dir) = &corpus_dir {
            std::fs::create_dir_all(dir)
                .unwrap_or_else(|e| usage(&format!("create {dir}: {e}")));
            for (i, recipe) in outcome.corpus.iter().enumerate() {
                let path = format!("{dir}/recipe{i:04}.json");
                let json = serde_json::to_string_pretty(recipe).expect("recipes serialize");
                std::fs::write(&path, json)
                    .unwrap_or_else(|e| usage(&format!("write {path}: {e}")));
            }
            eprintln!("corpus: {} recipes in {dir}", outcome.corpus.len());
        }
        outcome.report
    } else if sample {
        if kernels.is_empty() {
            usage("--sample profiles named workloads: give --workloads");
        }
        if !seeds.is_empty() {
            usage("--sample runs checkpoints, not torture seeds: drop --torture-seeds");
        }
        if ref_model.as_deref() == Some("arch") {
            usage("--sample profiles on a registry personality (nemu, nemu-trace, ...), not `arch`");
        }
        let mut s = SampleSpec::new(kernels.clone(), configs.clone()).with_workers(workers);
        if let Some(r) = &ref_model {
            s = s.with_ref(r.clone());
        }
        if let Some(i) = interval {
            s = s.with_interval(i);
        }
        if let Some(k) = max_checkpoints {
            s = s.with_max_checkpoints(k);
        }
        if let Some(w) = warmup {
            s = s.with_warmup(w);
        }
        if let Some(w) = window {
            s = s.with_window(w);
        }
        if let Some(c) = max_cycles {
            s = s.with_max_cycles(c);
        }
        if let Some(d) = &checkpoint_dir {
            s = s.with_checkpoint_dir(d);
        }
        s.lightsss_interval = lightsss;
        s.triage = triage;
        eprintln!(
            "sample campaign: {} workloads x {} configs on {} workers \
             (ref {}, interval {}, k<={}, warmup {}, window {})",
            s.workloads.len(),
            s.configs.len(),
            s.workers,
            s.ref_model,
            s.interval_len,
            s.max_checkpoints,
            s.warmup,
            s.window
        );
        run_sampled(&s)
    } else {
        if mp {
            usage("--mp schedules litmus recipes: it requires --fuzz");
        }
        if kernels.is_empty() && seeds.is_empty() {
            usage("nothing to run: give --workloads and/or --torture-seeds (or --fuzz)");
        }
        let torture_cfg = TortureConfig::default();
        let mut jobs = Vec::new();
        for config in &configs {
            for k in &kernels {
                jobs.push((WorkloadSource::kernel(k.clone()), config.clone()));
            }
            for &seed in &seeds {
                jobs.push((WorkloadSource::torture(seed, torture_cfg), config.clone()));
            }
        }
        let jobs: Vec<JobSpec> = jobs
            .into_iter()
            .map(|(source, config)| {
                let mut spec = JobSpec::new(source, config)
                    .with_max_cycles(max_cycles.unwrap_or(40_000_000));
                if let Some(interval) = lightsss {
                    spec = spec.with_lightsss(interval);
                }
                if let Some(bug) = inject {
                    spec = spec.with_injected_bug(bug);
                }
                if inject_l2_race {
                    spec = spec.with_l2_race();
                }
                if telemetry {
                    spec = spec.with_telemetry();
                }
                if lifecycle {
                    spec = spec.with_lifecycle();
                }
                if coverage {
                    spec = spec.with_coverage();
                }
                if let Some(r) = &ref_model {
                    spec = spec.with_ref(r.clone());
                }
                spec
            })
            .collect();

        eprintln!("campaign: {} jobs on {} workers", jobs.len(), workers);
        let mut c = Campaign::new(jobs)
            .with_workers(workers)
            .with_minimization(minimize)
            .with_triage(triage);
        if let Some(ms) = job_timeout_ms {
            c = c.with_job_wall_timeout_ms(ms);
        }
        if let Some(n) = retries {
            c = c.with_job_retries(n);
        }
        if let Some(ms) = retry_backoff_ms {
            c = c.with_retry_backoff_ms(ms);
        }
        c.run()
    };

    if let Some(dir) = &bundle_dir {
        std::fs::create_dir_all(dir)
            .unwrap_or_else(|e| usage(&format!("create {dir}: {e}")));
        for j in &report.jobs {
            let Some(bundle) = &j.triage else { continue };
            let path = format!("{dir}/job{}.bundle.json", j.index);
            let json = serde_json::to_string_pretty(bundle).expect("bundles serialize");
            std::fs::write(&path, json)
                .unwrap_or_else(|e| usage(&format!("write {path}: {e}")));
            eprintln!("bundle: {path}");
        }
    }

    for j in &report.jobs {
        let extra = match (&j.verdict, &j.minimized) {
            (Verdict::Diverged { .. }, Some(m)) => format!(
                " minimized {}→{} slots in {} runs",
                m.original_kept, m.minimized_kept, m.minimizer_runs
            ),
            (
                Verdict::ForbiddenOutcome {
                    round,
                    outcome_desc,
                    ..
                },
                m,
            ) => {
                let min = m
                    .as_ref()
                    .map(|m| {
                        format!(
                            " minimized {}→{} rounds in {} runs",
                            m.original_kept, m.minimized_kept, m.minimizer_runs
                        )
                    })
                    .unwrap_or_default();
                format!(" round {round}: {outcome_desc}{min}")
            }
            (Verdict::Panicked { message }, _) => format!(" ({message})"),
            _ => String::new(),
        };
        eprintln!(
            "  [{:>3}] {:<24} {:<10} {:<8} cycles={} ipc={:.3}{extra}",
            j.index,
            j.workload,
            j.config,
            j.verdict.label(),
            j.cycles,
            j.ipc
        );
    }
    for sm in &report.sampling {
        eprintln!(
            "  sampling {:<24} {:<10} weighted CPI {}.{:03} \
             ({}/{} checkpoints aggregated over {} intervals)",
            sm.workload,
            sm.config,
            sm.weighted_cpi_milli / 1000,
            sm.weighted_cpi_milli % 1000,
            sm.aggregated,
            sm.checkpoints,
            sm.total_intervals
        );
    }
    let s = &report.summary;
    eprintln!(
        "summary: {} jobs — {} halted, {} diverged, {} forbidden, {} sampled, {} timeout, \
         {} panicked ({} ms)",
        s.total, s.halted, s.diverged, s.forbidden, s.sampled, s.timeout, s.panicked,
        report.wall_clock.total_ms
    );

    let json = report.full_json();
    match &out {
        Some(path) => {
            std::fs::write(path, &json).unwrap_or_else(|e| usage(&format!("write {path}: {e}")));
            eprintln!("report: {path}");
        }
        None => println!("{json}"),
    }
    if s.halted + s.sampled != s.total {
        std::process::exit(1);
    }
}
