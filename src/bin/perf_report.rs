//! Render campaign telemetry as aligned ASCII: top-down CPI stacks,
//! occupancy/latency histograms, and cache hit/miss tables.
//!
//! ```text
//! perf_report REPORT.json [--job N] [--lifecycle]
//! ```
//!
//! `REPORT.json` is either a campaign report (`campaign --out`), in
//! which case every job's embedded [`PerfSnapshot`] is rendered (or just
//! job `N` with `--job`), or a bare `PerfSnapshot` JSON artifact (as
//! written by the CI perf-smoke step). `--lifecycle` additionally
//! renders each snapshot's lifecycle digest (per-stage gap histograms,
//! squash causes, dominant-stall attribution) and cross-checks it
//! against the CPI-stack layer. A report with a `sampling` section
//! (`campaign --sample`) additionally gets a per-phase CPI-stack table:
//! one row per checkpoint with its weight, window CPI, and top-down
//! slot shares, footed by the weighted estimate. Exit status: 0 on
//! success, 1 if any rendered snapshot violates the top-down CPI
//! identity or the digest/CPI cross-check, 2 on usage or parse errors.
//!
//! [`PerfSnapshot`]: minjie::PerfSnapshot

use campaign::{JobRecord, SamplingSummary};
use minjie::PerfSnapshot;
use serde::Deserialize;
use serde_json::Value;

fn usage(err: &str) -> ! {
    eprintln!("error: {err}");
    eprintln!("usage: perf_report REPORT.json [--job N] [--lifecycle]");
    std::process::exit(2);
}

/// Render one sampling summary as a per-phase CPI-stack table: one row
/// per checkpoint (its weight, window CPI, and the share of each
/// top-down slot class over the measured window), footed by the
/// weighted CPI estimate.
fn render_sampling(sm: &SamplingSummary, jobs: &[JobRecord]) {
    println!(
        "=== sampling {} {} (ref {}, interval {}, {} intervals profiled) ===",
        sm.workload, sm.config, sm.ref_model, sm.interval_len, sm.total_intervals
    );
    println!(
        "{:>8} {:>8} {:>8} {:>8}  {:>7}  {}",
        "phase", "interval", "members", "weight%", "cpi", "top-down slot shares"
    );
    for p in &sm.phases {
        let Some(s) = jobs
            .iter()
            .find(|j| j.index == p.job_index)
            .and_then(|j| j.sample.as_ref())
        else {
            continue;
        };
        let total = s.cpi_stack.total().max(1);
        let shares = s
            .cpi_stack
            .components()
            .iter()
            .filter(|(_, v)| *v > 0)
            .map(|(name, v)| format!("{name} {}%", 100 * v / total))
            .collect::<Vec<_>>()
            .join("  ");
        println!(
            "{:>8} {:>8} {:>8} {:>8}  {:>3}.{:03}  {}",
            p.job_index,
            p.interval,
            p.members,
            100 * p.members / sm.total_intervals.max(1),
            p.cpi_milli / 1000,
            p.cpi_milli % 1000,
            shares
        );
    }
    println!(
        "{:>35}  {:>3}.{:03}  ({}/{} checkpoints aggregated)",
        "weighted",
        sm.weighted_cpi_milli / 1000,
        sm.weighted_cpi_milli % 1000,
        sm.aggregated,
        sm.checkpoints
    );
    println!();
}

/// Render the lifecycle digest section of one snapshot; returns false
/// when the digest is inconsistent with the snapshot's other counters.
fn render_lifecycle(snap: &PerfSnapshot) -> bool {
    print!("{}", xscore::render_gap_summary(&snap.lifecycle_digest()));
    match snap.lifecycle_consistent() {
        Ok(()) => {
            println!("lifecycle/CPI cross-check: consistent");
            true
        }
        Err(e) => {
            println!("!! lifecycle/CPI cross-check VIOLATED: {e}");
            false
        }
    }
}

fn main() {
    let mut path: Option<String> = None;
    let mut only_job: Option<u64> = None;
    let mut lifecycle = false;
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--job" => {
                let v = args.next().unwrap_or_else(|| usage("missing value for --job"));
                only_job = Some(v.parse().unwrap_or_else(|_| usage("bad --job")));
            }
            "--lifecycle" => lifecycle = true,
            "--help" | "-h" => usage("help requested"),
            other if other.starts_with("--") => usage(&format!("unknown flag `{other}`")),
            other => {
                if path.replace(other.to_string()).is_some() {
                    usage("more than one report path");
                }
            }
        }
    }
    let path = path.unwrap_or_else(|| usage("missing report path"));
    let text =
        std::fs::read_to_string(&path).unwrap_or_else(|e| usage(&format!("read {path}: {e}")));
    let value: Value =
        serde_json::from_str(&text).unwrap_or_else(|e| usage(&format!("parse {path}: {e:?}")));

    let mut identity_ok = true;
    if value.get("jobs").is_some() {
        // A campaign report: render each job's embedded snapshot.
        let jobs: Vec<JobRecord> = Deserialize::deserialize(&value["jobs"])
            .unwrap_or_else(|e| usage(&format!("parse jobs in {path}: {e:?}")));
        let mut rendered = 0u64;
        for j in &jobs {
            if only_job.is_some_and(|n| n != j.index) {
                continue;
            }
            rendered += 1;
            println!(
                "=== job {} {} {} [{}] cycles={} ===",
                j.index,
                j.workload,
                j.config,
                j.verdict.label(),
                j.cycles
            );
            print!("{}", j.perf.render());
            if !j.perf.cpi_identity_holds() {
                identity_ok = false;
                println!("!! top-down CPI identity VIOLATED for job {}", j.index);
            }
            if lifecycle && !render_lifecycle(&j.perf) {
                identity_ok = false;
            }
            println!();
        }
        if rendered == 0 {
            usage(&format!("no matching job in {path}"));
        }
        if let Some(sampling) = value.get("sampling") {
            let summaries: Vec<SamplingSummary> = Deserialize::deserialize(sampling)
                .unwrap_or_else(|e| usage(&format!("parse sampling in {path}: {e:?}")));
            for sm in &summaries {
                render_sampling(sm, &jobs);
            }
        }
    } else {
        // A bare PerfSnapshot artifact (CI perf-smoke output).
        let snap: PerfSnapshot = Deserialize::deserialize(&value)
            .unwrap_or_else(|e| usage(&format!("parse snapshot in {path}: {e:?}")));
        print!("{}", snap.render());
        if !snap.cpi_identity_holds() {
            identity_ok = false;
            println!("!! top-down CPI identity VIOLATED");
        }
        if lifecycle && !render_lifecycle(&snap) {
            identity_ok = false;
        }
    }
    if !identity_ok {
        std::process::exit(1);
    }
}
