//! Replay CLI: reproduce a triaged failure from its bundle alone.
//!
//! ```text
//! replay --bundle job3.bundle.json        # render + re-execute + verify
//! replay --bundle job3.bundle.json --show # render only, no re-execution
//! replay --report report.json [--job N]   # render bundles from a report
//! ```
//!
//! A triage bundle is a self-contained recipe: the workload source, the
//! configuration, the injected bug, and the commit anchor of the
//! failure. `--bundle` re-executes that recipe from reset and checks
//! that the failure reproduces at the *identical commit index* — the
//! deterministic-replay guarantee the LightSSS → DiffTest debug loop
//! rests on. Exit status: 0 when the failure reproduces (or `--show` /
//! `--report` rendering succeeds), 1 when it does not, 2 on usage
//! errors.

use campaign::{verify_bundle, TriageBundle};
use serde::Deserialize;

fn usage(err: &str) -> ! {
    eprintln!("error: {err}");
    eprintln!(
        "usage: replay --bundle FILE [--show]\n\
         \x20      replay --report FILE [--job N]"
    );
    std::process::exit(2);
}

fn read(path: &str) -> String {
    std::fs::read_to_string(path).unwrap_or_else(|e| usage(&format!("read {path}: {e}")))
}

fn main() {
    let mut bundle_path: Option<String> = None;
    let mut report_path: Option<String> = None;
    let mut job: Option<u64> = None;
    let mut show_only = false;

    let mut args = std::env::args().skip(1);
    while let Some(flag) = args.next() {
        let mut value = || {
            args.next()
                .unwrap_or_else(|| usage("missing value for flag"))
        };
        match flag.as_str() {
            "--bundle" => bundle_path = Some(value()),
            "--report" => report_path = Some(value()),
            "--job" => job = Some(value().parse().unwrap_or_else(|_| usage("bad --job"))),
            "--show" => show_only = true,
            "--help" | "-h" => usage("help requested"),
            other => usage(&format!("unknown flag `{other}`")),
        }
    }

    match (bundle_path, report_path) {
        (Some(path), None) => {
            let bundle: TriageBundle = serde_json::from_str(&read(&path))
                .unwrap_or_else(|e| usage(&format!("parse {path}: {e:?}")));
            print!("{}", bundle.render());
            if show_only {
                return;
            }
            eprintln!("re-executing from reset ({} cycle budget)...", bundle.max_cycles);
            match verify_bundle(&bundle) {
                Err(e) => usage(&e),
                Ok(v) => {
                    println!(
                        "replay: {} — {}",
                        if v.reproduced { "REPRODUCED" } else { "NOT reproduced" },
                        v.detail
                    );
                    if !v.reproduced {
                        std::process::exit(1);
                    }
                }
            }
        }
        (None, Some(path)) => {
            let v: serde_json::Value = serde_json::from_str(&read(&path))
                .unwrap_or_else(|e| usage(&format!("parse {path}: {e:?}")));
            let Some(jobs) = v.get("jobs").and_then(|j| j.as_array()) else {
                usage("report has no jobs array");
            };
            let mut rendered = 0u64;
            for j in jobs {
                let idx = j.get("index").and_then(|i| i.as_u64()).unwrap_or(0);
                if job.is_some_and(|want| want != idx) {
                    continue;
                }
                let Some(t) = j.get("triage") else { continue };
                if t.is_null() {
                    continue;
                }
                match TriageBundle::deserialize(t) {
                    Ok(bundle) => {
                        print!("{}", bundle.render());
                        rendered += 1;
                    }
                    Err(e) => eprintln!("job {idx}: malformed bundle: {e:?}"),
                }
            }
            if rendered == 0 {
                eprintln!(
                    "no triage bundles{} in {path}",
                    job.map(|n| format!(" for job {n}")).unwrap_or_default()
                );
                std::process::exit(1);
            }
        }
        _ => usage("give exactly one of --bundle or --report"),
    }
}
