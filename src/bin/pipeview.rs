//! Pipeline waterfall viewer: render per-instruction lifecycle records
//! from a triage bundle, a campaign report, or a raw trace export.
//!
//! ```text
//! pipeview --bundle BUNDLE.json [--o3]
//! pipeview --report REPORT.json [--job N] [--o3]
//! pipeview --trace TRACE.json [--o3]
//! ```
//!
//! * `--bundle` reads a `TriageBundle` (`campaign --bundle-dir`) and
//!   renders its crash-ring snapshot: the last uops in flight before the
//!   failure, as an ASCII waterfall plus per-stage gap summaries.
//! * `--report` reads a campaign report and renders, per job, the
//!   always-on lifecycle digest from the embedded perf snapshot and the
//!   ring waterfall of any attached triage bundle.
//! * `--trace` reads a raw JSON array of lifecycle records (e.g. the
//!   `lifecycle` ArchDB table exported by a `--lifecycle` run).
//! * `--o3` emits gem5-O3PipeView text (Konata-compatible) instead of
//!   the ASCII waterfall.
//!
//! Exit status: 0 on success (including an empty-but-well-formed ring),
//! 2 on usage or parse errors.

use campaign::{JobRecord, TriageBundle};
use serde::Deserialize;
use serde_json::Value;
use xscore::{render_gap_summary, render_o3pipeview, render_waterfall, Lifecycle, LifecycleDigest};

fn usage(err: &str) -> ! {
    eprintln!("error: {err}");
    eprintln!(
        "usage: pipeview --bundle BUNDLE.json [--o3]\n\
         \x20      pipeview --report REPORT.json [--job N] [--o3]\n\
         \x20      pipeview --trace TRACE.json [--o3]"
    );
    std::process::exit(2);
}

fn read_json(path: &str) -> Value {
    let text =
        std::fs::read_to_string(path).unwrap_or_else(|e| usage(&format!("read {path}: {e}")));
    serde_json::from_str(&text).unwrap_or_else(|e| usage(&format!("parse {path}: {e:?}")))
}

/// Fold raw records into a digest so gap summaries work on any source.
fn digest_of(records: &[Lifecycle]) -> LifecycleDigest {
    let mut d = LifecycleDigest::default();
    for r in records {
        if r.retired() {
            d.observe_retired(r);
        } else if let Some(cause) = r.cause {
            d.observe_squashed(r, cause);
        }
    }
    d
}

fn render_records(records: &[Lifecycle], o3: bool) {
    if o3 {
        print!("{}", render_o3pipeview(records));
    } else {
        print!("{}", render_waterfall(records));
        print!("{}", render_gap_summary(&digest_of(records)));
    }
}

fn main() {
    let mut bundle: Option<String> = None;
    let mut report: Option<String> = None;
    let mut trace: Option<String> = None;
    let mut only_job: Option<u64> = None;
    let mut o3 = false;
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        let mut value = || {
            args.next()
                .unwrap_or_else(|| usage("missing value for flag"))
        };
        match arg.as_str() {
            "--bundle" => bundle = Some(value()),
            "--report" => report = Some(value()),
            "--trace" => trace = Some(value()),
            "--job" => {
                only_job = Some(value().parse().unwrap_or_else(|_| usage("bad --job")));
            }
            "--o3" => o3 = true,
            "--help" | "-h" => usage("help requested"),
            other => usage(&format!("unknown flag `{other}`")),
        }
    }
    let sources = [&bundle, &report, &trace].iter().filter(|s| s.is_some()).count();
    if sources != 1 {
        usage("give exactly one of --bundle, --report, --trace");
    }

    if let Some(path) = &bundle {
        let b: TriageBundle = Deserialize::deserialize(&read_json(path))
            .unwrap_or_else(|e| usage(&format!("parse bundle in {path}: {e:?}")));
        println!(
            "bundle: job {} ({}) workload {} config {} at cycle {}",
            b.job_index, b.trigger, b.workload, b.config, b.at_cycle
        );
        render_records(&b.lifecycle_ring, o3);
    } else if let Some(path) = &report {
        let value = read_json(path);
        let jobs: Vec<JobRecord> = Deserialize::deserialize(&value["jobs"])
            .unwrap_or_else(|e| usage(&format!("parse jobs in {path}: {e:?}")));
        let mut rendered = 0u64;
        for j in &jobs {
            if only_job.is_some_and(|n| n != j.index) {
                continue;
            }
            rendered += 1;
            println!(
                "=== job {} {} {} [{}] ===",
                j.index,
                j.workload,
                j.config,
                j.verdict.label()
            );
            if !o3 {
                print!("{}", render_gap_summary(&j.perf.lifecycle_digest()));
            }
            match &j.triage {
                Some(b) => render_records(&b.lifecycle_ring, o3),
                None if o3 => {}
                None => println!("(no triage bundle: job did not fail)"),
            }
            println!();
        }
        if rendered == 0 {
            usage(&format!("no matching job in {path}"));
        }
    } else if let Some(path) = &trace {
        let records: Vec<Lifecycle> = Deserialize::deserialize(&read_json(path))
            .unwrap_or_else(|e| usage(&format!("parse lifecycle records in {path}: {e:?}")));
        render_records(&records, o3);
    }
}
