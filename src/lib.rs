//! Umbrella crate for the MINJIE/XiangShan reproduction workspace.
//!
//! This crate re-exports the workspace members so that the runnable
//! examples under `examples/` and the cross-crate integration tests under
//! `tests/` can exercise the whole platform through one dependency.
//! Library users should depend on the individual crates directly.

pub use checkpoint;
pub use minjie;
pub use nemu;
pub use riscv_isa;
pub use uncore;
pub use workloads;
pub use xscore;
