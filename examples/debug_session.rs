//! The §IV-C debugging story, end to end: a dual-core run with the
//! L2 Probe/GrantData race injected, DiffTest catching the data mismatch,
//! LightSSS rolling back and replaying in debug mode, and ArchDB
//! filtering the captured events around the failure.
//!
//! ```text
//! cargo run --release --example debug_session
//! ```

use minjie::{CoSim, CoSimEnd};
use riscv_isa::asm::{reg::*, Asm};
use riscv_isa::csr::addr as csr;
use xscore::XsConfig;

fn shared_counter_program(rounds: i64) -> riscv_isa::asm::Program {
    let counter = 0x8002_0000i64;
    let done = 0x8002_0100i64;
    let mut a = Asm::new(0x8000_0000);
    let hart1 = a.label();
    let finish = a.label();
    a.csrrs(T0, csr::MHARTID, ZERO);
    a.bnez(T0, hart1);
    a.li(T1, counter);
    a.li(T2, 1);
    a.li(S0, rounds);
    let l0 = a.bound_label();
    a.amoadd_d(ZERO, T2, T1);
    a.addi(S0, S0, -1);
    a.bnez(S0, l0);
    a.li(T3, done);
    let wait = a.bound_label();
    a.ld(T4, 0, T3);
    a.beqz(T4, wait);
    a.j(finish);
    a.bind(hart1);
    a.li(T1, counter);
    a.li(T2, 2);
    a.li(S0, rounds);
    let l1 = a.bound_label();
    a.amoadd_d(ZERO, T2, T1);
    a.addi(S0, S0, -1);
    a.bnez(S0, l1);
    a.li(T3, done);
    a.li(T4, 1);
    a.sd(T4, 0, T3);
    a.li(A0, 0);
    a.ebreak();
    a.bind(finish);
    a.li(T1, counter);
    a.ld(A0, 0, T1);
    a.ebreak();
    a.assemble()
}

fn main() {
    let mut cfg = XsConfig::nh_dual();
    cfg.memory = xscore::MemoryModel::FixedAmat(60);
    let program = shared_counter_program(60);

    println!("== clean run (no fault) ==");
    let mut clean = CoSim::new(cfg.clone(), &program).with_lightsss(10_000);
    match clean.run(20_000_000) {
        CoSimEnd::Halted(code) => println!(
            "halted, counter = {code} (expected {}), {} commits verified, rules: {:?}",
            60 * 3,
            clean.state.diff.commits_checked,
            clean.state.diff.stats.all()
        ),
        other => panic!("clean run failed: {other:?}"),
    }

    println!();
    println!("== run with the L2 Probe/GrantData race injected into core 0 ==");
    let mut attempt = 0;
    loop {
        attempt += 1;
        let mut buggy =
            CoSim::new(cfg.clone(), &shared_counter_program(60 + attempt * 20)).with_lightsss(10_000);
        buggy.state.sys.mem.inject_l2_race_bug(0);
        match buggy.run(30_000_000) {
            CoSimEnd::Bug(report) => {
                println!("DiffTest reports: {:?}", report.error);
                println!("detected at cycle {}", report.at_cycle);
                let replay = report.replay.expect("LightSSS enabled");
                println!(
                    "LightSSS: restored the snapshot at cycle {}, replayed {} cycles in debug mode, reproduced = {}",
                    replay.from_cycle, replay.cycles_replayed, replay.reproduced
                );
                // ArchDB: the debug-mode trace around the failure,
                // rendered by the timeline viewer (the repo's stand-in for
                // the paper's Waveform Terminator).
                if let Some(table) = replay.trace.table("instr_commit") {
                    println!("ArchDB captured {} commit events.", table.len());
                    let last = table.rows().last().map(|(c, _)| *c).unwrap_or(0);
                    print!(
                        "{}",
                        replay
                            .trace
                            .render_timeline("instr_commit", last.saturating_sub(40), last)
                    );
                }
                break;
            }
            CoSimEnd::Halted(code) => {
                println!("attempt {attempt}: race window missed (counter = {code}); retrying");
                if attempt >= 5 {
                    println!("race did not fire in 5 attempts (it is timing-dependent)");
                    break;
                }
            }
            CoSimEnd::OutOfCycles => panic!("did not converge"),
        }
    }
}
