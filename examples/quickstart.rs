//! Quickstart: assemble a program, run it on NEMU and on the XiangShan
//! cycle model, then verify the cycle model against NEMU with DiffTest.
//!
//! ```text
//! cargo run --release --example quickstart
//! ```

use minjie::{CoSim, CoSimEnd};
use nemu::Interpreter;
use riscv_isa::asm::{reg::*, Asm};
use xscore::{XsConfig, XsSystem};

fn main() {
    // 1. Build a program with the in-repo assembler: sum of 1..=100_000.
    let mut a = Asm::new(0x8000_0000);
    a.li(T0, 1);
    a.li(T1, 100_000);
    a.li(A0, 0);
    let top = a.bound_label();
    a.add(A0, A0, T0);
    a.addi(T0, T0, 1);
    a.bne(T0, T1, top);
    a.add(A0, A0, T0); // include the last term
    a.ebreak();
    let program = a.assemble();
    let expected: u64 = (1..=100_000).sum();

    // 2. Run it on NEMU, the fast interpreter.
    let mut nemu = nemu::Nemu::new(&program);
    let r = nemu.run(10_000_000);
    println!(
        "NEMU: exit = {:?} after {} instructions (uop-cache fills: {})",
        r.exit_code,
        r.instructions,
        nemu.stats.uop_fills
    );
    assert_eq!(r.exit_code, Some(expected));

    // 3. Run it on the XiangShan NH cycle model.
    let mut sys = XsSystem::new(XsConfig::nh(), &program);
    let code = sys.run(10_000_000);
    let perf = &sys.cores[0].perf;
    println!(
        "XiangShan NH: exit = {code:?}, {} cycles, IPC {:.2}, branch MPKI {:.2}",
        perf.cycles,
        perf.ipc(),
        perf.mpki()
    );
    assert_eq!(code, Some(expected));

    // 4. Co-simulate: every committed instruction checked against NEMU.
    let mut cosim = CoSim::new(XsConfig::nh(), &program);
    match cosim.run(10_000_000) {
        CoSimEnd::Halted(c) => println!(
            "DiffTest: clean, {} commits verified, exit = {c}",
            cosim.state.diff.commits_checked
        ),
        other => panic!("DiffTest reported: {other:?}"),
    }
}
