//! The §III-D performance-evaluation workflow: profile a workload with
//! NEMU, pick SimPoints, simulate only the representative checkpoints on
//! the cycle model with warm-up, and compare the weighted CPI estimate
//! against a full run.
//!
//! ```text
//! cargo run --release --example perf_eval
//! ```

use checkpoint::{generate_checkpoints, weighted_cpi};
use std::time::Instant;
use workloads::{workload, Scale};
use xscore::{XsConfig, XsSystem};

fn main() {
    let w = workload("bzip2", Scale::Test);
    let cfg = XsConfig::nh();

    // Full-detail simulation (the expensive baseline).
    let t0 = Instant::now();
    let mut sys = XsSystem::new(cfg.clone(), &w.program);
    sys.run(200_000_000).expect("halts");
    let full_time = t0.elapsed();
    let full_cpi = 1.0 / sys.cores[0].perf.ipc();
    println!(
        "full simulation:   CPI {:.3}  ({} instructions, {:?})",
        full_cpi,
        sys.cores[0].instret(),
        full_time
    );

    // Profile with NEMU and select SimPoints.
    let t0 = Instant::now();
    let set = generate_checkpoints(&w.program, 10_000, 4, 500_000_000);
    println!(
        "NEMU profiling:    {} instructions -> {} intervals -> {} SimPoints ({:?})",
        set.total_instructions,
        set.total_instructions / set.interval_len,
        set.points.len(),
        t0.elapsed()
    );
    for (c, p) in set.checkpoints.iter().zip(&set.points) {
        println!(
            "  checkpoint at interval {} (instret {}), weight {:.2}",
            p.interval, c.instret, p.weight
        );
    }

    // Simulate each checkpoint with warm-up and measure CPI.
    let t0 = Instant::now();
    let (warmup, window) = (2_000u64, 5_000u64);
    let mut cpis = Vec::new();
    let mut weights = Vec::new();
    for c in &set.checkpoints {
        let mut sys = XsSystem::from_memory(cfg.clone(), c.memory.clone(), c.state.pc);
        sys.restore(&c.state);
        while sys.cores[0].instret() < warmup && !sys.all_halted() {
            sys.tick();
        }
        let (c0, i0) = (sys.cores[0].cycle(), sys.cores[0].instret());
        while sys.cores[0].instret() < i0 + window && !sys.all_halted() {
            sys.tick();
        }
        let di = sys.cores[0].instret() - i0;
        if di == 0 {
            continue;
        }
        let cpi = (sys.cores[0].cycle() - c0) as f64 / di as f64;
        println!("  interval {:>3}: CPI {:.3}", c.interval, cpi);
        cpis.push(cpi);
        weights.push(c.weight);
    }
    let est = weighted_cpi(&cpis, &weights);
    println!(
        "sampled estimate:  CPI {:.3}  (deviation {:+.1}%, sampling took {:?})",
        est,
        (est / full_cpi - 1.0) * 100.0,
        t0.elapsed()
    );
    println!();
    println!("The checkpoint format itself is bootable with base-ISA instructions");
    println!("only (Fig. 9): see Checkpoint::restore_loader and its tests.");
}
