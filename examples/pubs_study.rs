//! The §IV-D feature-exploration case study: implement and evaluate
//! PUBS (Prioritizing Unconfident Branch Slices) on the XiangShan model.
//!
//! Reproduces the paper's workflow — and its *negative* result: on a
//! machine as wide as XiangShan, prioritizing unconfident branch slices
//! barely moves IPC, because cycles with more ready instructions than
//! issue slots are rare (Fig. 15).
//!
//! ```text
//! cargo run --release --example pubs_study
//! ```

use checkpoint::generate_checkpoints;
use workloads::{workload, Scale};
use xscore::{XsConfig, XsSystem};

fn measure(
    cfg: &XsConfig,
    c: &checkpoint::Checkpoint,
    warmup: u64,
    window: u64,
) -> Option<(f64, xscore::PerfCounters)> {
    let mut sys = XsSystem::from_memory(cfg.clone(), c.memory.clone(), c.state.pc);
    sys.restore(&c.state);
    while sys.cores[0].instret() < warmup && !sys.all_halted() {
        sys.tick();
    }
    let (c0, i0) = (sys.cores[0].cycle(), sys.cores[0].instret());
    while sys.cores[0].instret() < i0 + window && !sys.all_halted() {
        sys.tick();
    }
    let di = sys.cores[0].instret() - i0;
    if di < window / 2 {
        return None; // checkpoint too close to the end of the program
    }
    let ipc = di as f64 / (sys.cores[0].cycle() - c0).max(1) as f64;
    Some((ipc, sys.cores[0].perf.clone()))
}

fn main() {
    // sjeng: the program with the highest reported PUBS speedup.
    let w = workload("sjeng", Scale::Test);
    let set = generate_checkpoints(&w.program, 6_000, 5, 100_000_000);
    println!(
        "PUBS case study on sjeng ({} checkpoints, MPKI-heavy branches)",
        set.checkpoints.len()
    );
    println!();
    println!(
        "{:<12} {:>10} {:>10} {:>8}",
        "checkpoint", "AGE", "AGE+PUBS", "delta"
    );
    let age = XsConfig::nh();
    let pubs = XsConfig::nh().with_pubs();
    let mut deltas = Vec::new();
    let mut last_perf = None;
    for c in &set.checkpoints {
        let (Some((a, perf_age)), Some((p, perf_pubs))) =
            (measure(&age, c, 2_000, 6_000), measure(&pubs, c, 2_000, 6_000))
        else {
            println!("{:<12} (skipped: too close to program end)", format!("#{}", c.interval));
            continue;
        };
        let d = (p / a - 1.0) * 100.0;
        deltas.push(d);
        println!("{:<12} {a:>10.3} {p:>10.3} {d:>7.2}%", format!("#{}", c.interval));
        last_perf = Some((perf_age, perf_pubs));
    }
    let mean = deltas.iter().sum::<f64>() / deltas.len() as f64;
    println!();
    println!("mean IPC delta: {mean:+.2}%  (paper Fig. 14: no visible deviation)");

    // The §IV-D2 counter analysis explaining why.
    if let Some((perf_age, perf_pubs)) = last_perf {
        let gt2 = perf_age.frac_cycles_ready_gt(2) * 100.0;
        let hp = perf_pubs.high_priority_dispatched as f64
            / perf_pubs.dispatched.max(1) as f64
            * 100.0;
        println!();
        println!("why (the paper's Fig. 15 analysis):");
        println!("  cycles with >2 ready ALU instructions: {gt2:.1}%  (paper: 12.8%)");
        println!("  instructions marked high-priority:     {hp:.1}%  (paper: 5.9%)");
        println!("  -> too few scheduling conflicts involve prioritized work for");
        println!("     the issue policy to change end-to-end IPC.");
    }
}
