//! Vendored `serde_derive` stand-in for the offline build environment.
//!
//! Implements `#[derive(Serialize)]` and `#[derive(Deserialize)]` against
//! the vendored `serde` facade (whose data model is a single JSON-like
//! [`Value`] tree) without depending on `syn`/`quote`: the item is parsed
//! directly from the `proc_macro::TokenStream`.
//!
//! Supported shapes — everything this workspace derives on:
//! - structs with named fields,
//! - unit structs,
//! - enums with unit, tuple, and struct variants (externally tagged,
//!   matching serde's default JSON representation).
//!
//! Generic types are intentionally rejected; none of the workspace's
//! serialized types are generic.

use proc_macro::{Delimiter, TokenStream, TokenTree};

struct Variant {
    name: String,
    kind: VariantKind,
}

enum VariantKind {
    Unit,
    Tuple(usize),
    Struct(Vec<String>),
}

enum Item {
    Struct { name: String, fields: Vec<String> },
    UnitStruct { name: String },
    Enum { name: String, variants: Vec<Variant> },
}

/// Derive `serde::Serialize` (facade: `fn serialize(&self) -> Value`).
#[proc_macro_derive(Serialize)]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    match parse_item(input) {
        Ok(item) => gen_serialize(&item).parse().expect("generated impl parses"),
        Err(e) => error(&e),
    }
}

/// Derive `serde::Deserialize` (facade: `fn deserialize(&Value) -> Result<Self, Error>`).
#[proc_macro_derive(Deserialize)]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    match parse_item(input) {
        Ok(item) => gen_deserialize(&item).parse().expect("generated impl parses"),
        Err(e) => error(&e),
    }
}

fn error(msg: &str) -> TokenStream {
    format!("compile_error!({msg:?});").parse().unwrap()
}

// --- parsing ---------------------------------------------------------------

fn parse_item(input: TokenStream) -> Result<Item, String> {
    let toks: Vec<TokenTree> = input.into_iter().collect();
    let mut i = 0;
    skip_attrs_and_vis(&toks, &mut i);
    let kw = ident_at(&toks, i).ok_or("expected `struct` or `enum`")?;
    i += 1;
    let name = ident_at(&toks, i).ok_or("expected item name")?;
    i += 1;
    if matches!(&toks.get(i), Some(TokenTree::Punct(p)) if p.as_char() == '<') {
        return Err(format!("serde_derive (vendored) does not support generic type `{name}`"));
    }
    match kw.as_str() {
        "struct" => match toks.get(i) {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => Ok(Item::Struct {
                name,
                fields: parse_named_fields(g.stream())?,
            }),
            Some(TokenTree::Punct(p)) if p.as_char() == ';' => Ok(Item::UnitStruct { name }),
            _ => Err(format!("unsupported struct shape for `{name}` (tuple structs are not derivable)")),
        },
        "enum" => match toks.get(i) {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => Ok(Item::Enum {
                name,
                variants: parse_variants(g.stream())?,
            }),
            _ => Err(format!("expected enum body for `{name}`")),
        },
        other => Err(format!("expected `struct` or `enum`, found `{other}`")),
    }
}

fn ident_at(toks: &[TokenTree], i: usize) -> Option<String> {
    match toks.get(i) {
        Some(TokenTree::Ident(id)) => Some(id.to_string()),
        _ => None,
    }
}

/// Skip `#[...]` attributes, doc comments, and a leading visibility.
fn skip_attrs_and_vis(toks: &[TokenTree], i: &mut usize) {
    loop {
        match toks.get(*i) {
            Some(TokenTree::Punct(p)) if p.as_char() == '#' => {
                // `#[...]`
                *i += 2;
            }
            Some(TokenTree::Ident(id)) if id.to_string() == "pub" => {
                *i += 1;
                // `pub(crate)` / `pub(super)` / ...
                if matches!(toks.get(*i), Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis)
                {
                    *i += 1;
                }
            }
            _ => return,
        }
    }
}

/// Skip tokens until a `,` at angle-bracket depth 0 (used to skip types
/// and discriminant expressions). Leaves the index past the comma.
fn skip_to_comma(toks: &[TokenTree], i: &mut usize) {
    let mut depth = 0i32;
    while let Some(t) = toks.get(*i) {
        if let TokenTree::Punct(p) = t {
            match p.as_char() {
                '<' => depth += 1,
                '>' => depth -= 1,
                ',' if depth == 0 => {
                    *i += 1;
                    return;
                }
                _ => {}
            }
        }
        *i += 1;
    }
}

fn parse_named_fields(body: TokenStream) -> Result<Vec<String>, String> {
    let toks: Vec<TokenTree> = body.into_iter().collect();
    let mut fields = Vec::new();
    let mut i = 0;
    while i < toks.len() {
        skip_attrs_and_vis(&toks, &mut i);
        if i >= toks.len() {
            break;
        }
        let name = ident_at(&toks, i).ok_or("expected field name")?;
        i += 1;
        match toks.get(i) {
            Some(TokenTree::Punct(p)) if p.as_char() == ':' => i += 1,
            _ => return Err(format!("expected `:` after field `{name}`")),
        }
        skip_to_comma(&toks, &mut i);
        fields.push(name);
    }
    Ok(fields)
}

fn parse_variants(body: TokenStream) -> Result<Vec<Variant>, String> {
    let toks: Vec<TokenTree> = body.into_iter().collect();
    let mut variants = Vec::new();
    let mut i = 0;
    while i < toks.len() {
        skip_attrs_and_vis(&toks, &mut i);
        if i >= toks.len() {
            break;
        }
        let name = ident_at(&toks, i).ok_or("expected variant name")?;
        i += 1;
        let kind = match toks.get(i) {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                let arity = tuple_arity(g.stream());
                i += 1;
                VariantKind::Tuple(arity)
            }
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                let fields = parse_named_fields(g.stream())?;
                i += 1;
                VariantKind::Struct(fields)
            }
            _ => VariantKind::Unit,
        };
        // Explicit discriminant (`= 11`) and/or the separating comma.
        skip_to_comma(&toks, &mut i);
        variants.push(Variant { name, kind });
    }
    Ok(variants)
}

fn tuple_arity(body: TokenStream) -> usize {
    let toks: Vec<TokenTree> = body.into_iter().collect();
    if toks.is_empty() {
        return 0;
    }
    let mut commas = 0usize;
    let mut depth = 0i32;
    let mut trailing_comma = false;
    for t in &toks {
        trailing_comma = false;
        if let TokenTree::Punct(p) = t {
            match p.as_char() {
                '<' => depth += 1,
                '>' => depth -= 1,
                ',' if depth == 0 => {
                    commas += 1;
                    trailing_comma = true;
                }
                _ => {}
            }
        }
    }
    if trailing_comma {
        commas
    } else {
        commas + 1
    }
}

// --- codegen ---------------------------------------------------------------

fn gen_serialize(item: &Item) -> String {
    match item {
        Item::UnitStruct { name } => format!(
            "impl ::serde::Serialize for {name} {{\n\
               fn serialize(&self) -> ::serde::Value {{ ::serde::Value::Null }}\n\
             }}"
        ),
        Item::Struct { name, fields } => {
            let mut body = String::from("let mut m = ::serde::Map::new();\n");
            for f in fields {
                body.push_str(&format!(
                    "m.insert(::std::string::String::from({f:?}), ::serde::Serialize::serialize(&self.{f}));\n"
                ));
            }
            body.push_str("::serde::Value::Object(m)");
            format!(
                "impl ::serde::Serialize for {name} {{\n\
                   fn serialize(&self) -> ::serde::Value {{\n{body}\n}}\n\
                 }}"
            )
        }
        Item::Enum { name, variants } => {
            let mut arms = String::new();
            for v in variants {
                let vn = &v.name;
                match &v.kind {
                    VariantKind::Unit => arms.push_str(&format!(
                        "{name}::{vn} => ::serde::Value::String(::std::string::String::from({vn:?})),\n"
                    )),
                    VariantKind::Tuple(1) => arms.push_str(&format!(
                        "{name}::{vn}(f0) => ::serde::Value::tagged({vn:?}, ::serde::Serialize::serialize(f0)),\n"
                    )),
                    VariantKind::Tuple(n) => {
                        let binds: Vec<String> = (0..*n).map(|k| format!("f{k}")).collect();
                        let mut inner = String::from("let mut a = ::std::vec::Vec::new();\n");
                        for b in &binds {
                            inner.push_str(&format!(
                                "a.push(::serde::Serialize::serialize({b}));\n"
                            ));
                        }
                        arms.push_str(&format!(
                            "{name}::{vn}({}) => {{ {inner} ::serde::Value::tagged({vn:?}, ::serde::Value::Array(a)) }}\n",
                            binds.join(", ")
                        ));
                    }
                    VariantKind::Struct(fields) => {
                        let mut inner = String::from("let mut m = ::serde::Map::new();\n");
                        for f in fields {
                            inner.push_str(&format!(
                                "m.insert(::std::string::String::from({f:?}), ::serde::Serialize::serialize({f}));\n"
                            ));
                        }
                        arms.push_str(&format!(
                            "{name}::{vn} {{ {} }} => {{ {inner} ::serde::Value::tagged({vn:?}, ::serde::Value::Object(m)) }}\n",
                            fields.join(", ")
                        ));
                    }
                }
            }
            format!(
                "impl ::serde::Serialize for {name} {{\n\
                   fn serialize(&self) -> ::serde::Value {{\n\
                     match self {{\n{arms}\n}}\n\
                   }}\n\
                 }}"
            )
        }
    }
}

fn gen_deserialize(item: &Item) -> String {
    match item {
        Item::UnitStruct { name } => format!(
            "impl ::serde::Deserialize for {name} {{\n\
               fn deserialize(_v: &::serde::Value) -> ::std::result::Result<Self, ::serde::Error> {{\n\
                 ::std::result::Result::Ok({name})\n\
               }}\n\
             }}"
        ),
        Item::Struct { name, fields } => {
            let mut body = String::new();
            for f in fields {
                body.push_str(&format!(
                    "{f}: ::serde::Deserialize::deserialize(v.get_or_null({f:?}))?,\n"
                ));
            }
            format!(
                "impl ::serde::Deserialize for {name} {{\n\
                   fn deserialize(v: &::serde::Value) -> ::std::result::Result<Self, ::serde::Error> {{\n\
                     ::std::result::Result::Ok({name} {{ {body} }})\n\
                   }}\n\
                 }}"
            )
        }
        Item::Enum { name, variants } => {
            let mut unit_arms = String::new();
            let mut tagged_arms = String::new();
            for v in variants {
                let vn = &v.name;
                match &v.kind {
                    VariantKind::Unit => unit_arms.push_str(&format!(
                        "{vn:?} => return ::std::result::Result::Ok({name}::{vn}),\n"
                    )),
                    VariantKind::Tuple(1) => tagged_arms.push_str(&format!(
                        "{vn:?} => return ::std::result::Result::Ok({name}::{vn}(::serde::Deserialize::deserialize(inner)?)),\n"
                    )),
                    VariantKind::Tuple(n) => {
                        let args: Vec<String> = (0..*n)
                            .map(|k| {
                                format!("::serde::Deserialize::deserialize(inner.idx_or_null({k}))?")
                            })
                            .collect();
                        tagged_arms.push_str(&format!(
                            "{vn:?} => return ::std::result::Result::Ok({name}::{vn}({})),\n",
                            args.join(", ")
                        ));
                    }
                    VariantKind::Struct(fields) => {
                        let inits: Vec<String> = fields
                            .iter()
                            .map(|f| {
                                format!(
                                    "{f}: ::serde::Deserialize::deserialize(inner.get_or_null({f:?}))?"
                                )
                            })
                            .collect();
                        tagged_arms.push_str(&format!(
                            "{vn:?} => return ::std::result::Result::Ok({name}::{vn} {{ {} }}),\n",
                            inits.join(", ")
                        ));
                    }
                }
            }
            format!(
                "impl ::serde::Deserialize for {name} {{\n\
                   fn deserialize(v: &::serde::Value) -> ::std::result::Result<Self, ::serde::Error> {{\n\
                     if let ::serde::Value::String(s) = v {{\n\
                       match s.as_str() {{ {unit_arms} _ => {{}} }}\n\
                     }}\n\
                     if let ::std::option::Option::Some((tag, inner)) = v.as_single_entry() {{\n\
                       match tag {{ {tagged_arms} _ => {{}} }}\n\
                     }}\n\
                     ::std::result::Result::Err(::serde::Error::custom(concat!(\"no variant of `\", stringify!({name}), \"` matched\")))\n\
                   }}\n\
                 }}"
            )
        }
    }
}
