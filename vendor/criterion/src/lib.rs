//! Vendored `criterion` stand-in for the offline build environment.
//!
//! A timing-only micro-benchmark harness behind the subset of the
//! criterion API this workspace uses: [`Criterion`] with the
//! `sample_size`/`measurement_time`/`warm_up_time` builders,
//! `bench_function`, `Bencher::iter`, and the `criterion_group!`/
//! `criterion_main!` macros. Reports mean/min per-iteration wall time;
//! no statistics, plots, or baselines.

use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// Benchmark harness configuration and runner.
#[derive(Debug, Clone)]
pub struct Criterion {
    sample_size: usize,
    measurement_time: Duration,
    warm_up_time: Duration,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion {
            sample_size: 10,
            measurement_time: Duration::from_secs(1),
            warm_up_time: Duration::from_millis(300),
        }
    }
}

impl Criterion {
    /// Number of timed samples per benchmark.
    #[must_use]
    pub fn sample_size(mut self, n: usize) -> Self {
        self.sample_size = n.max(1);
        self
    }

    /// Total measurement budget per benchmark.
    #[must_use]
    pub fn measurement_time(mut self, d: Duration) -> Self {
        self.measurement_time = d;
        self
    }

    /// Warm-up budget per benchmark.
    #[must_use]
    pub fn warm_up_time(mut self, d: Duration) -> Self {
        self.warm_up_time = d;
        self
    }

    /// Run one named benchmark.
    pub fn bench_function(&mut self, name: &str, mut f: impl FnMut(&mut Bencher)) -> &mut Self {
        let mut b = Bencher {
            warm_up: self.warm_up_time,
            budget: self.measurement_time,
            samples: self.sample_size,
            per_iter: Vec::new(),
        };
        f(&mut b);
        if b.per_iter.is_empty() {
            println!("{name:<40} (no measurements)");
            return self;
        }
        let mean = b.per_iter.iter().sum::<f64>() / b.per_iter.len() as f64;
        let min = b.per_iter.iter().cloned().fold(f64::INFINITY, f64::min);
        println!(
            "{name:<40} mean {:>12} min {:>12} ({} samples)",
            fmt_ns(mean),
            fmt_ns(min),
            b.per_iter.len()
        );
        self
    }
}

fn fmt_ns(ns: f64) -> String {
    if ns < 1_000.0 {
        format!("{ns:.1} ns")
    } else if ns < 1_000_000.0 {
        format!("{:.2} µs", ns / 1_000.0)
    } else if ns < 1_000_000_000.0 {
        format!("{:.2} ms", ns / 1_000_000.0)
    } else {
        format!("{:.3} s", ns / 1_000_000_000.0)
    }
}

/// Timer handed to each benchmark closure.
pub struct Bencher {
    warm_up: Duration,
    budget: Duration,
    samples: usize,
    per_iter: Vec<f64>,
}

impl Bencher {
    /// Time `f`, called repeatedly: warm-up first, then `samples`
    /// batches within the measurement budget.
    pub fn iter<R>(&mut self, mut f: impl FnMut() -> R) {
        // Warm-up, and calibrate the batch size to ~1ms per batch.
        let warm_start = Instant::now();
        let mut calls = 0u64;
        while warm_start.elapsed() < self.warm_up {
            black_box(f());
            calls += 1;
        }
        let warm_elapsed = warm_start.elapsed().as_nanos().max(1) as u64;
        let per_call = (warm_elapsed / calls.max(1)).max(1);
        let batch = (1_000_000 / per_call).clamp(1, 1_000_000);

        let run_start = Instant::now();
        for _ in 0..self.samples {
            if run_start.elapsed() > self.budget {
                break;
            }
            let t0 = Instant::now();
            for _ in 0..batch {
                black_box(f());
            }
            let dt = t0.elapsed().as_nanos() as f64;
            self.per_iter.push(dt / batch as f64);
        }
        if self.per_iter.is_empty() {
            // Budget exhausted during warm-up: record one batch anyway.
            let t0 = Instant::now();
            for _ in 0..batch {
                black_box(f());
            }
            self.per_iter.push(t0.elapsed().as_nanos() as f64 / batch as f64);
        }
    }
}

/// Declare a benchmark group (vendored subset).
#[macro_export]
macro_rules! criterion_group {
    (name = $name:ident; config = $config:expr; targets = $($target:path),+ $(,)?) => {
        fn $name() {
            let mut criterion = $config;
            $($target(&mut criterion);)+
        }
    };
    ($name:ident, $($target:path),+ $(,)?) => {
        $crate::criterion_group! {
            name = $name;
            config = $crate::Criterion::default();
            targets = $($target),+
        }
    };
}

/// Declare the benchmark entry point (vendored subset).
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_function_records_samples() {
        let mut c = Criterion::default()
            .sample_size(3)
            .measurement_time(Duration::from_millis(50))
            .warm_up_time(Duration::from_millis(5));
        let mut x = 0u64;
        c.bench_function("spin", |b| b.iter(|| x = x.wrapping_add(1)));
        assert!(x > 0);
    }
}
