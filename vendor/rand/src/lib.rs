//! Vendored `rand` stand-in for the offline build environment.
//!
//! Deterministic xoshiro256++ generator behind the subset of the `rand`
//! 0.8 API this workspace uses: `rngs::StdRng`, `SeedableRng::
//! seed_from_u64`, and `Rng::{gen, gen_range, gen_bool}`. The stream
//! differs from upstream `rand` — everything seeded here is consumed
//! within this workspace, where only per-seed determinism matters.

use std::ops::{Range, RangeInclusive};

/// Low-level generator interface.
pub trait RngCore {
    /// Next 64 uniformly random bits.
    fn next_u64(&mut self) -> u64;

    /// Next 32 uniformly random bits.
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

/// Generators constructible from a small seed.
pub trait SeedableRng: Sized {
    /// Construct deterministically from a 64-bit seed.
    fn seed_from_u64(seed: u64) -> Self;
}

/// High-level sampling interface (blanket-implemented for all cores).
pub trait Rng: RngCore {
    /// Sample a uniform value of `T`.
    fn gen<T: Standard>(&mut self) -> T
    where
        Self: Sized,
    {
        T::from_bits(self.next_u64())
    }

    /// Sample uniformly from a range (half-open or inclusive).
    ///
    /// # Panics
    ///
    /// Panics on an empty range.
    fn gen_range<T, R>(&mut self, range: R) -> T
    where
        Self: Sized,
        R: SampleRange<T>,
    {
        range.sample_from(&mut || self.next_u64())
    }

    /// Bernoulli sample with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        f64_from_bits(self.next_u64()) < p
    }
}

impl<T: RngCore> Rng for T {}

/// Types samplable from 64 uniform bits (the `Standard` distribution).
pub trait Standard {
    /// Build a uniform sample from 64 random bits.
    fn from_bits(bits: u64) -> Self;
}

macro_rules! standard_int {
    ($($t:ty),*) => {$(
        impl Standard for $t {
            fn from_bits(bits: u64) -> Self { bits as $t }
        }
    )*};
}
standard_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Standard for bool {
    fn from_bits(bits: u64) -> Self {
        bits & 1 == 1
    }
}

impl Standard for f64 {
    fn from_bits(bits: u64) -> Self {
        f64_from_bits(bits)
    }
}

impl Standard for f32 {
    fn from_bits(bits: u64) -> Self {
        ((bits >> 40) as f32) * (1.0 / (1u64 << 24) as f32)
    }
}

fn f64_from_bits(bits: u64) -> f64 {
    ((bits >> 11) as f64) * (1.0 / (1u64 << 53) as f64)
}

/// Ranges samplable by [`Rng::gen_range`].
pub trait SampleRange<T> {
    /// Draw one uniform sample using the provided bit source.
    fn sample_from(self, next: &mut dyn FnMut() -> u64) -> T;
}

macro_rules! sample_range_int {
    ($($t:ty => $wide:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_from(self, next: &mut dyn FnMut() -> u64) -> $t {
                assert!(self.start < self.end, "gen_range on empty range");
                let span = (self.end as $wide).wrapping_sub(self.start as $wide) as u64;
                let off = if span == 0 { next() } else { next() % span };
                (self.start as $wide).wrapping_add(off as $wide) as $t
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample_from(self, next: &mut dyn FnMut() -> u64) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "gen_range on empty range");
                let span = (hi as $wide).wrapping_sub(lo as $wide) as u64;
                let off = if span == u64::MAX { next() } else { next() % (span + 1) };
                (lo as $wide).wrapping_add(off as $wide) as $t
            }
        }
    )*};
}
sample_range_int!(
    u8 => u64, u16 => u64, u32 => u64, u64 => u64, usize => u64,
    i8 => i64, i16 => i64, i32 => i64, i64 => i64, isize => i64
);

impl SampleRange<f64> for Range<f64> {
    fn sample_from(self, next: &mut dyn FnMut() -> u64) -> f64 {
        assert!(self.start < self.end, "gen_range on empty range");
        self.start + f64_from_bits(next()) * (self.end - self.start)
    }
}

/// Named generators.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// The standard deterministic generator (xoshiro256++).
    #[derive(Debug, Clone)]
    pub struct StdRng {
        s: [u64; 4],
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            // SplitMix64 expansion, as recommended by the xoshiro authors.
            let mut sm = seed;
            let mut next_sm = move || {
                sm = sm.wrapping_add(0x9e37_79b9_7f4a_7c15);
                let mut z = sm;
                z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
                z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
                z ^ (z >> 31)
            };
            StdRng {
                s: [next_sm(), next_sm(), next_sm(), next_sm()],
            }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            let s = &mut self.s;
            let result = s[0]
                .wrapping_add(s[3])
                .rotate_left(23)
                .wrapping_add(s[0]);
            let t = s[1] << 17;
            s[2] ^= s[0];
            s[3] ^= s[1];
            s[1] ^= s[2];
            s[0] ^= s[3];
            s[2] ^= t;
            s[3] = s[3].rotate_left(45);
            result
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_per_seed() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        let mut c = StdRng::seed_from_u64(8);
        let xs: Vec<u64> = (0..16).map(|_| a.gen()).collect();
        let ys: Vec<u64> = (0..16).map(|_| b.gen()).collect();
        let zs: Vec<u64> = (0..16).map(|_| c.gen()).collect();
        assert_eq!(xs, ys);
        assert_ne!(xs, zs);
    }

    #[test]
    fn ranges_stay_in_bounds() {
        let mut r = StdRng::seed_from_u64(1);
        for _ in 0..10_000 {
            let v: i64 = r.gen_range(-2048..2048);
            assert!((-2048..2048).contains(&v));
            let u: usize = r.gen_range(0..15);
            assert!(u < 15);
            let w: u64 = r.gen_range(1..=8);
            assert!((1..=8).contains(&w));
            let m: i32 = r.gen_range(0..100);
            assert!((0..100).contains(&m));
        }
    }

    #[test]
    fn gen_bool_respects_probability() {
        let mut r = StdRng::seed_from_u64(3);
        let hits = (0..10_000).filter(|_| r.gen_bool(0.25)).count();
        assert!((1_800..3_200).contains(&hits), "{hits}");
        let f: f64 = r.gen();
        assert!((0.0..1.0).contains(&f));
    }
}
