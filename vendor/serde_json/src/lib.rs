//! Vendored `serde_json` stand-in for the offline build environment.
//!
//! JSON text parsing/printing over the vendored `serde` facade's
//! [`Value`] tree. Provides the workspace's used subset: `to_value`,
//! `to_string`, `to_string_pretty`, `to_vec`, `from_str`, `from_slice`,
//! plus the [`Value`]/[`Map`] re-exports.

pub use serde::{Error, Map, Value};

use serde::{write_json, Deserialize, Serialize};

/// Project any [`Serialize`] type into a [`Value`].
///
/// # Errors
///
/// Never fails in this facade; `Result` is kept for API compatibility.
pub fn to_value<T: Serialize>(value: &T) -> Result<Value, Error> {
    Ok(value.serialize())
}

/// Serialize to compact JSON text.
///
/// # Errors
///
/// Never fails in this facade.
pub fn to_string<T: Serialize>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    write_json(&value.serialize(), &mut out, None, 0);
    Ok(out)
}

/// Serialize to pretty-printed JSON text (two-space indent).
///
/// # Errors
///
/// Never fails in this facade.
pub fn to_string_pretty<T: Serialize>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    write_json(&value.serialize(), &mut out, Some(2), 0);
    Ok(out)
}

/// Serialize to compact JSON bytes.
///
/// # Errors
///
/// Never fails in this facade.
pub fn to_vec<T: Serialize>(value: &T) -> Result<Vec<u8>, Error> {
    to_string(value).map(String::into_bytes)
}

/// Parse JSON text and deserialize into `T`.
///
/// # Errors
///
/// Returns [`Error`] on malformed JSON or a shape mismatch.
pub fn from_str<T: Deserialize>(s: &str) -> Result<T, Error> {
    let value = parse(s)?;
    T::deserialize(&value)
}

/// Parse JSON bytes and deserialize into `T`.
///
/// # Errors
///
/// Returns [`Error`] on non-UTF-8 input, malformed JSON, or a shape
/// mismatch.
pub fn from_slice<T: Deserialize>(b: &[u8]) -> Result<T, Error> {
    let s = std::str::from_utf8(b).map_err(|e| Error::custom(e.to_string()))?;
    from_str(s)
}

/// Parse JSON text into a [`Value`].
///
/// # Errors
///
/// Returns [`Error`] on malformed JSON.
pub fn parse(s: &str) -> Result<Value, Error> {
    let mut p = Parser {
        bytes: s.as_bytes(),
        pos: 0,
    };
    p.skip_ws();
    let v = p.value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(Error::custom(format!(
            "trailing characters at byte {}",
            p.pos
        )));
    }
    Ok(v)
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl Parser<'_> {
    fn skip_ws(&mut self) {
        while let Some(&b) = self.bytes.get(self.pos) {
            if matches!(b, b' ' | b'\t' | b'\n' | b'\r') {
                self.pos += 1;
            } else {
                break;
            }
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, b: u8) -> Result<(), Error> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(Error::custom(format!(
                "expected `{}` at byte {}",
                b as char, self.pos
            )))
        }
    }

    fn eat_keyword(&mut self, kw: &str) -> bool {
        if self.bytes[self.pos..].starts_with(kw.as_bytes()) {
            self.pos += kw.len();
            true
        } else {
            false
        }
    }

    fn value(&mut self) -> Result<Value, Error> {
        match self.peek() {
            Some(b'n') if self.eat_keyword("null") => Ok(Value::Null),
            Some(b't') if self.eat_keyword("true") => Ok(Value::Bool(true)),
            Some(b'f') if self.eat_keyword("false") => Ok(Value::Bool(false)),
            Some(b'"') => self.string().map(Value::String),
            Some(b'[') => self.array(),
            Some(b'{') => self.object(),
            Some(b'-') | Some(b'0'..=b'9') => self.number(),
            other => Err(Error::custom(format!(
                "unexpected {:?} at byte {}",
                other.map(|b| b as char),
                self.pos
            ))),
        }
    }

    fn array(&mut self) -> Result<Value, Error> {
        self.expect(b'[')?;
        let mut out = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Value::Array(out));
        }
        loop {
            self.skip_ws();
            out.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Value::Array(out));
                }
                _ => return Err(Error::custom(format!("expected `,` or `]` at byte {}", self.pos))),
            }
        }
    }

    fn object(&mut self) -> Result<Value, Error> {
        self.expect(b'{')?;
        let mut out = Map::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Value::Object(out));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let value = self.value()?;
            out.insert(key, value);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Value::Object(out));
                }
                _ => return Err(Error::custom(format!("expected `,` or `}}` at byte {}", self.pos))),
            }
        }
    }

    fn string(&mut self) -> Result<String, Error> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err(Error::custom("unterminated string")),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'n') => out.push('\n'),
                        Some(b't') => out.push('\t'),
                        Some(b'r') => out.push('\r'),
                        Some(b'b') => out.push('\u{8}'),
                        Some(b'f') => out.push('\u{c}'),
                        Some(b'u') => {
                            let hex = self
                                .bytes
                                .get(self.pos + 1..self.pos + 5)
                                .ok_or_else(|| Error::custom("truncated \\u escape"))?;
                            let hex = std::str::from_utf8(hex)
                                .map_err(|_| Error::custom("bad \\u escape"))?;
                            let code = u32::from_str_radix(hex, 16)
                                .map_err(|_| Error::custom("bad \\u escape"))?;
                            out.push(char::from_u32(code).unwrap_or('\u{fffd}'));
                            self.pos += 4;
                        }
                        _ => return Err(Error::custom("bad escape")),
                    }
                    self.pos += 1;
                }
                Some(_) => {
                    // Consume one UTF-8 code point.
                    let rest = &self.bytes[self.pos..];
                    let s = std::str::from_utf8(rest)
                        .map_err(|e| Error::custom(e.to_string()))?;
                    let c = s.chars().next().expect("non-empty");
                    out.push(c);
                    self.pos += c.len_utf8();
                }
            }
        }
    }

    fn number(&mut self) -> Result<Value, Error> {
        let start = self.pos;
        let mut is_float = false;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while let Some(b) = self.peek() {
            match b {
                b'0'..=b'9' => self.pos += 1,
                b'.' | b'e' | b'E' | b'+' | b'-' => {
                    is_float = true;
                    self.pos += 1;
                }
                _ => break,
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|e| Error::custom(e.to_string()))?;
        if is_float {
            text.parse::<f64>()
                .map(Value::F64)
                .map_err(|e| Error::custom(e.to_string()))
        } else if text.starts_with('-') {
            text.parse::<i64>()
                .map(Value::I64)
                .map_err(|e| Error::custom(e.to_string()))
        } else {
            text.parse::<u64>()
                .map(Value::U64)
                .map_err(|e| Error::custom(e.to_string()))
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trip_value() {
        let text = r#"{"a":[1,-2,3.5,"x\"y",null,true],"b":{"c":18446744073709551615}}"#;
        let v: Value = from_str(text).unwrap();
        assert_eq!(v["a"][0], 1);
        assert_eq!(v["a"][1], -2i64);
        assert_eq!(v["a"][3], "x\"y");
        assert_eq!(v["b"]["c"], u64::MAX);
        let printed = to_string(&v).unwrap();
        let v2: Value = from_str(&printed).unwrap();
        assert_eq!(v, v2);
    }

    #[test]
    fn pretty_print_parses_back() {
        let v: Value = from_str(r#"{"x":[1,2],"y":"z"}"#).unwrap();
        let pretty = to_string_pretty(&v).unwrap();
        assert!(pretty.contains('\n'));
        let v2: Value = from_str(&pretty).unwrap();
        assert_eq!(v, v2);
    }

    #[test]
    fn floats_keep_a_decimal_point() {
        let s = to_string(&2.0f64).unwrap();
        assert_eq!(s, "2.0");
        let back: f64 = from_str(&s).unwrap();
        assert_eq!(back, 2.0);
    }
}
