//! Vendored `serde` facade for the offline build environment.
//!
//! The build container has no network access and an empty crates.io
//! cache, so the real `serde` cannot be fetched. This crate provides the
//! subset the workspace actually uses, over a simplified data model: a
//! single JSON-like [`Value`] tree.
//!
//! - [`Serialize`] — `fn serialize(&self) -> Value`,
//! - [`Deserialize`] — `fn deserialize(&Value) -> Result<Self, Error>`,
//! - `#[derive(Serialize, Deserialize)]` via the vendored `serde_derive`
//!   (externally tagged enums, named-field structs),
//! - impls for primitives, `String`, `Option`, `Vec`, arrays, tuples,
//!   and string-keyed maps.
//!
//! Integer fidelity matters to this workspace (`u64` register values
//! round-trip through JSON), so [`Value`] keeps `U64`/`I64`/`F64`
//! variants distinct rather than collapsing to `f64`.

pub use serde_derive::{Deserialize, Serialize};

use std::collections::{BTreeMap, HashMap};

/// String-keyed object map (ordered, like serde_json's default `Map`).
pub type Map = BTreeMap<String, Value>;

/// A JSON-like value tree — the facade's entire data model.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// JSON `null`.
    Null,
    /// JSON boolean.
    Bool(bool),
    /// Non-negative integer (kept exact).
    U64(u64),
    /// Negative (or explicitly signed) integer (kept exact).
    I64(i64),
    /// Floating-point number.
    F64(f64),
    /// JSON string.
    String(String),
    /// JSON array.
    Array(Vec<Value>),
    /// JSON object (ordered by key).
    Object(Map),
}

static NULL: Value = Value::Null;

impl Value {
    /// Externally-tagged single-entry object: `{"Tag": inner}`.
    pub fn tagged(tag: &str, inner: Value) -> Value {
        let mut m = Map::new();
        m.insert(tag.to_string(), inner);
        Value::Object(m)
    }

    /// Object field lookup.
    pub fn get(&self, key: &str) -> Option<&Value> {
        match self {
            Value::Object(m) => m.get(key),
            _ => None,
        }
    }

    /// Object field lookup, `Null` when absent (derive support).
    pub fn get_or_null(&self, key: &str) -> &Value {
        self.get(key).unwrap_or(&NULL)
    }

    /// Array element lookup, `Null` when absent (derive support).
    pub fn idx_or_null(&self, i: usize) -> &Value {
        match self {
            Value::Array(a) => a.get(i).unwrap_or(&NULL),
            _ => &NULL,
        }
    }

    /// For a single-entry object, its `(key, value)` pair.
    pub fn as_single_entry(&self) -> Option<(&str, &Value)> {
        match self {
            Value::Object(m) if m.len() == 1 => {
                m.iter().next().map(|(k, v)| (k.as_str(), v))
            }
            _ => None,
        }
    }

    /// The value as `u64`, when exactly representable.
    pub fn as_u64(&self) -> Option<u64> {
        match *self {
            Value::U64(v) => Some(v),
            Value::I64(v) if v >= 0 => Some(v as u64),
            Value::F64(v) if v >= 0.0 && v.fract() == 0.0 && v <= u64::MAX as f64 => {
                Some(v as u64)
            }
            _ => None,
        }
    }

    /// The value as `i64`, when exactly representable.
    pub fn as_i64(&self) -> Option<i64> {
        match *self {
            Value::I64(v) => Some(v),
            Value::U64(v) if v <= i64::MAX as u64 => Some(v as i64),
            Value::F64(v) if v.fract() == 0.0 && v.abs() <= i64::MAX as f64 => Some(v as i64),
            _ => None,
        }
    }

    /// The value as `f64`.
    pub fn as_f64(&self) -> Option<f64> {
        match *self {
            Value::F64(v) => Some(v),
            Value::U64(v) => Some(v as f64),
            Value::I64(v) => Some(v as f64),
            _ => None,
        }
    }

    /// The value as `bool`.
    pub fn as_bool(&self) -> Option<bool> {
        match *self {
            Value::Bool(b) => Some(b),
            _ => None,
        }
    }

    /// The value as `&str`.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::String(s) => Some(s),
            _ => None,
        }
    }

    /// The value as an array slice.
    pub fn as_array(&self) -> Option<&Vec<Value>> {
        match self {
            Value::Array(a) => Some(a),
            _ => None,
        }
    }

    /// The value as an object map.
    pub fn as_object(&self) -> Option<&Map> {
        match self {
            Value::Object(m) => Some(m),
            _ => None,
        }
    }

    /// True when `Null`.
    pub fn is_null(&self) -> bool {
        matches!(self, Value::Null)
    }
}

impl std::ops::Index<&str> for Value {
    type Output = Value;
    fn index(&self, key: &str) -> &Value {
        self.get_or_null(key)
    }
}

impl std::ops::Index<usize> for Value {
    type Output = Value;
    fn index(&self, i: usize) -> &Value {
        self.idx_or_null(i)
    }
}

impl PartialEq<&str> for Value {
    fn eq(&self, other: &&str) -> bool {
        self.as_str() == Some(*other)
    }
}

impl PartialEq<str> for Value {
    fn eq(&self, other: &str) -> bool {
        self.as_str() == Some(other)
    }
}

impl PartialEq<i32> for Value {
    fn eq(&self, other: &i32) -> bool {
        self.as_i64() == Some(*other as i64)
    }
}

impl PartialEq<i64> for Value {
    fn eq(&self, other: &i64) -> bool {
        self.as_i64() == Some(*other)
    }
}

impl PartialEq<u64> for Value {
    fn eq(&self, other: &u64) -> bool {
        self.as_u64() == Some(*other)
    }
}

impl PartialEq<bool> for Value {
    fn eq(&self, other: &bool) -> bool {
        self.as_bool() == Some(*other)
    }
}

impl From<bool> for Value {
    fn from(v: bool) -> Value {
        Value::Bool(v)
    }
}
impl From<u64> for Value {
    fn from(v: u64) -> Value {
        Value::U64(v)
    }
}
impl From<u32> for Value {
    fn from(v: u32) -> Value {
        Value::U64(v as u64)
    }
}
impl From<usize> for Value {
    fn from(v: usize) -> Value {
        Value::U64(v as u64)
    }
}
impl From<i64> for Value {
    fn from(v: i64) -> Value {
        if v >= 0 {
            Value::U64(v as u64)
        } else {
            Value::I64(v)
        }
    }
}
impl From<i32> for Value {
    fn from(v: i32) -> Value {
        Value::from(v as i64)
    }
}
impl From<f64> for Value {
    fn from(v: f64) -> Value {
        Value::F64(v)
    }
}
impl From<&str> for Value {
    fn from(v: &str) -> Value {
        Value::String(v.to_string())
    }
}
impl From<String> for Value {
    fn from(v: String) -> Value {
        Value::String(v)
    }
}

/// Serialization/deserialization error.
#[derive(Debug, Clone)]
pub struct Error(pub String);

impl Error {
    /// Build an error from a message.
    pub fn custom(msg: impl Into<String>) -> Error {
        Error(msg.into())
    }
}

impl std::fmt::Display for Error {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}", self.0)
    }
}

impl std::error::Error for Error {}

/// Types that can project themselves into a [`Value`].
pub trait Serialize {
    /// Project into the JSON-like data model.
    fn serialize(&self) -> Value;
}

/// Types reconstructible from a [`Value`].
pub trait Deserialize: Sized {
    /// Reconstruct from the JSON-like data model.
    ///
    /// # Errors
    ///
    /// Returns [`Error`] when the value's shape does not match.
    fn deserialize(v: &Value) -> Result<Self, Error>;
}

// --- primitive impls -------------------------------------------------------

macro_rules! ser_uint {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn serialize(&self) -> Value { Value::U64(*self as u64) }
        }
        impl Deserialize for $t {
            fn deserialize(v: &Value) -> Result<Self, Error> {
                let n = v.as_u64().ok_or_else(|| Error::custom(concat!("expected ", stringify!($t))))?;
                <$t>::try_from(n).map_err(|_| Error::custom(concat!(stringify!($t), " out of range")))
            }
        }
    )*};
}
ser_uint!(u8, u16, u32, u64, usize);

macro_rules! ser_int {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn serialize(&self) -> Value { Value::from(*self as i64) }
        }
        impl Deserialize for $t {
            fn deserialize(v: &Value) -> Result<Self, Error> {
                let n = v.as_i64().ok_or_else(|| Error::custom(concat!("expected ", stringify!($t))))?;
                <$t>::try_from(n).map_err(|_| Error::custom(concat!(stringify!($t), " out of range")))
            }
        }
    )*};
}
ser_int!(i8, i16, i32, i64, isize);

impl Serialize for bool {
    fn serialize(&self) -> Value {
        Value::Bool(*self)
    }
}
impl Deserialize for bool {
    fn deserialize(v: &Value) -> Result<Self, Error> {
        v.as_bool().ok_or_else(|| Error::custom("expected bool"))
    }
}

impl Serialize for f64 {
    fn serialize(&self) -> Value {
        Value::F64(*self)
    }
}
impl Deserialize for f64 {
    fn deserialize(v: &Value) -> Result<Self, Error> {
        v.as_f64().ok_or_else(|| Error::custom("expected f64"))
    }
}

impl Serialize for f32 {
    fn serialize(&self) -> Value {
        Value::F64(*self as f64)
    }
}
impl Deserialize for f32 {
    fn deserialize(v: &Value) -> Result<Self, Error> {
        v.as_f64().map(|f| f as f32).ok_or_else(|| Error::custom("expected f32"))
    }
}

impl Serialize for String {
    fn serialize(&self) -> Value {
        Value::String(self.clone())
    }
}
impl Deserialize for String {
    fn deserialize(v: &Value) -> Result<Self, Error> {
        v.as_str().map(str::to_string).ok_or_else(|| Error::custom("expected string"))
    }
}

impl Serialize for str {
    fn serialize(&self) -> Value {
        Value::String(self.to_string())
    }
}

impl Serialize for char {
    fn serialize(&self) -> Value {
        Value::String(self.to_string())
    }
}
impl Deserialize for char {
    fn deserialize(v: &Value) -> Result<Self, Error> {
        let s = v.as_str().ok_or_else(|| Error::custom("expected char"))?;
        let mut it = s.chars();
        match (it.next(), it.next()) {
            (Some(c), None) => Ok(c),
            _ => Err(Error::custom("expected single-char string")),
        }
    }
}

impl<T: Serialize + ?Sized> Serialize for &T {
    fn serialize(&self) -> Value {
        (**self).serialize()
    }
}

impl<T: Serialize> Serialize for Option<T> {
    fn serialize(&self) -> Value {
        match self {
            Some(v) => v.serialize(),
            None => Value::Null,
        }
    }
}
impl<T: Deserialize> Deserialize for Option<T> {
    fn deserialize(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Null => Ok(None),
            other => Ok(Some(T::deserialize(other)?)),
        }
    }
}

impl<T: Serialize> Serialize for Vec<T> {
    fn serialize(&self) -> Value {
        Value::Array(self.iter().map(Serialize::serialize).collect())
    }
}
impl<T: Deserialize> Deserialize for Vec<T> {
    fn deserialize(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Array(a) => a.iter().map(T::deserialize).collect(),
            _ => Err(Error::custom("expected array")),
        }
    }
}

impl<T: Serialize> Serialize for [T] {
    fn serialize(&self) -> Value {
        Value::Array(self.iter().map(Serialize::serialize).collect())
    }
}

impl<T: Serialize, const N: usize> Serialize for [T; N] {
    fn serialize(&self) -> Value {
        Value::Array(self.iter().map(Serialize::serialize).collect())
    }
}
impl<T: Deserialize + Default + Copy, const N: usize> Deserialize for [T; N] {
    fn deserialize(v: &Value) -> Result<Self, Error> {
        let a = v.as_array().ok_or_else(|| Error::custom("expected array"))?;
        if a.len() != N {
            return Err(Error::custom("array length mismatch"));
        }
        let mut out = [T::default(); N];
        for (slot, item) in out.iter_mut().zip(a) {
            *slot = T::deserialize(item)?;
        }
        Ok(out)
    }
}

macro_rules! ser_tuple {
    ($(($($t:ident : $idx:tt),+)),*) => {$(
        impl<$($t: Serialize),+> Serialize for ($($t,)+) {
            fn serialize(&self) -> Value {
                Value::Array(vec![$(self.$idx.serialize()),+])
            }
        }
        impl<$($t: Deserialize),+> Deserialize for ($($t,)+) {
            fn deserialize(v: &Value) -> Result<Self, Error> {
                Ok(($($t::deserialize(v.idx_or_null($idx))?,)+))
            }
        }
    )*};
}
ser_tuple!(
    (A: 0),
    (A: 0, B: 1),
    (A: 0, B: 1, C: 2),
    (A: 0, B: 1, C: 2, D: 3)
);

impl<V: Serialize> Serialize for BTreeMap<String, V> {
    fn serialize(&self) -> Value {
        Value::Object(self.iter().map(|(k, v)| (k.clone(), v.serialize())).collect())
    }
}
impl<V: Serialize> Serialize for BTreeMap<&str, V> {
    fn serialize(&self) -> Value {
        Value::Object(
            self.iter()
                .map(|(k, v)| (k.to_string(), v.serialize()))
                .collect(),
        )
    }
}
impl<V: Deserialize> Deserialize for BTreeMap<String, V> {
    fn deserialize(v: &Value) -> Result<Self, Error> {
        let m = v.as_object().ok_or_else(|| Error::custom("expected object"))?;
        m.iter()
            .map(|(k, v)| Ok((k.clone(), V::deserialize(v)?)))
            .collect()
    }
}

impl<V: Serialize> Serialize for HashMap<String, V> {
    fn serialize(&self) -> Value {
        // Sort for deterministic output.
        let mut sorted: Vec<(&String, &V)> = self.iter().collect();
        sorted.sort_by(|a, b| a.0.cmp(b.0));
        Value::Object(
            sorted
                .into_iter()
                .map(|(k, v)| (k.clone(), v.serialize()))
                .collect(),
        )
    }
}
impl<V: Deserialize> Deserialize for HashMap<String, V> {
    fn deserialize(v: &Value) -> Result<Self, Error> {
        let m = v.as_object().ok_or_else(|| Error::custom("expected object"))?;
        m.iter()
            .map(|(k, v)| Ok((k.clone(), V::deserialize(v)?)))
            .collect()
    }
}

impl Serialize for Value {
    fn serialize(&self) -> Value {
        self.clone()
    }
}
impl Deserialize for Value {
    fn deserialize(v: &Value) -> Result<Self, Error> {
        Ok(v.clone())
    }
}

// --- JSON text rendering (shared by Display and serde_json) ----------------

impl std::fmt::Display for Value {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let mut s = String::new();
        write_json(self, &mut s, None, 0);
        f.write_str(&s)
    }
}

/// Append the JSON text of `v` to `out`. `indent = Some(width)` selects
/// pretty-printing at nesting `level`.
pub fn write_json(v: &Value, out: &mut String, indent: Option<usize>, level: usize) {
    match v {
        Value::Null => out.push_str("null"),
        Value::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
        Value::U64(n) => out.push_str(&n.to_string()),
        Value::I64(n) => out.push_str(&n.to_string()),
        Value::F64(n) => {
            if n.is_finite() {
                if n.fract() == 0.0 && n.abs() < 1e15 {
                    // Keep a decimal point so the value parses back as F64.
                    out.push_str(&format!("{n:.1}"));
                } else {
                    out.push_str(&n.to_string());
                }
            } else {
                out.push_str("null");
            }
        }
        Value::String(s) => write_json_string(s, out),
        Value::Array(a) => {
            if a.is_empty() {
                out.push_str("[]");
                return;
            }
            out.push('[');
            for (i, item) in a.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                newline_indent(out, indent, level + 1);
                write_json(item, out, indent, level + 1);
            }
            newline_indent(out, indent, level);
            out.push(']');
        }
        Value::Object(m) => {
            if m.is_empty() {
                out.push_str("{}");
                return;
            }
            out.push('{');
            for (i, (k, val)) in m.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                newline_indent(out, indent, level + 1);
                write_json_string(k, out);
                out.push(':');
                if indent.is_some() {
                    out.push(' ');
                }
                write_json(val, out, indent, level + 1);
            }
            newline_indent(out, indent, level);
            out.push('}');
        }
    }
}

fn newline_indent(out: &mut String, indent: Option<usize>, level: usize) {
    if let Some(w) = indent {
        out.push('\n');
        for _ in 0..w * level {
            out.push(' ');
        }
    }
}

fn write_json_string(s: &str, out: &mut String) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn value_indexing_and_eq() {
        let mut m = Map::new();
        m.insert("a".into(), Value::U64(7));
        m.insert("s".into(), Value::from("hi"));
        let v = Value::Object(m);
        assert_eq!(v["a"], 7u64);
        assert_eq!(v["a"], 7);
        assert_eq!(v["s"], "hi");
        assert!(v["missing"].is_null());
    }

    #[test]
    fn primitives_round_trip() {
        assert_eq!(u64::deserialize(&u64::MAX.serialize()).unwrap(), u64::MAX);
        assert_eq!(i64::deserialize(&(-5i64).serialize()).unwrap(), -5);
        assert_eq!(
            <Option<u8>>::deserialize(&None::<u8>.serialize()).unwrap(),
            None
        );
        let arr = [1u64, 2, 3];
        assert_eq!(<[u64; 3]>::deserialize(&arr.serialize()).unwrap(), arr);
        let t = (true, 3u8, 9u64);
        assert_eq!(
            <(bool, u8, u64)>::deserialize(&t.serialize()).unwrap(),
            t
        );
    }

    #[test]
    fn display_is_compact_json() {
        let v = Value::Array(vec![Value::from("a\"b"), Value::U64(1), Value::Null]);
        assert_eq!(v.to_string(), r#"["a\"b",1,null]"#);
    }
}
