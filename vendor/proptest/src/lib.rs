//! Vendored `proptest` stand-in for the offline build environment.
//!
//! Implements the subset of the proptest API this workspace uses: the
//! [`proptest!`] macro, range and `any::<T>()` strategies, tuple and
//! `prop::collection::vec` combinators, `prop_assert!`/`prop_assert_eq!`,
//! [`ProptestConfig`], and [`TestCaseError`]. Cases are sampled from a
//! deterministic per-test RNG; there is no shrinking — failures report
//! the generating inputs instead.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::fmt;
use std::ops::{Range, RangeInclusive};

/// Test-runner configuration.
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of cases to run per property.
    pub cases: u32,
}

impl ProptestConfig {
    /// Config running `cases` cases.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 64 }
    }
}

/// A failed (or rejected) test case.
#[derive(Debug, Clone)]
pub enum TestCaseError {
    /// The property failed with a message.
    Fail(String),
    /// The input was rejected (counted, not failed).
    Reject(String),
}

impl TestCaseError {
    /// A failure with the given message.
    pub fn fail(msg: impl Into<String>) -> Self {
        TestCaseError::Fail(msg.into())
    }

    /// A rejection with the given message.
    pub fn reject(msg: impl Into<String>) -> Self {
        TestCaseError::Reject(msg.into())
    }
}

impl fmt::Display for TestCaseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TestCaseError::Fail(m) => write!(f, "{m}"),
            TestCaseError::Reject(m) => write!(f, "rejected: {m}"),
        }
    }
}

/// A source of random values for one test case.
pub type TestRng = StdRng;

/// Value generators.
pub trait Strategy {
    /// The generated type.
    type Value: fmt::Debug;

    /// Draw one value.
    fn sample(&self, rng: &mut TestRng) -> Self::Value;
}

macro_rules! strategy_for_int_range {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn sample(&self, rng: &mut TestRng) -> $t {
                rng.gen_range(self.clone())
            }
        }
        impl Strategy for RangeInclusive<$t> {
            type Value = $t;
            fn sample(&self, rng: &mut TestRng) -> $t {
                rng.gen_range(self.clone())
            }
        }
    )*};
}
strategy_for_int_range!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

/// `any::<T>()` strategy.
#[derive(Debug, Clone, Copy)]
pub struct Any<T>(std::marker::PhantomData<T>);

/// Uniform over the whole domain of `T`.
pub fn any<T: rand::Standard + fmt::Debug>() -> Any<T> {
    Any(std::marker::PhantomData)
}

impl<T: rand::Standard + fmt::Debug> Strategy for Any<T> {
    type Value = T;
    fn sample(&self, rng: &mut TestRng) -> T {
        rng.gen()
    }
}

macro_rules! strategy_for_tuple {
    ($(($($t:ident : $idx:tt),+)),*) => {$(
        impl<$($t: Strategy),+> Strategy for ($($t,)+) {
            type Value = ($($t::Value,)+);
            fn sample(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$idx.sample(rng),)+)
            }
        }
    )*};
}
strategy_for_tuple!(
    (A: 0, B: 1),
    (A: 0, B: 1, C: 2),
    (A: 0, B: 1, C: 2, D: 3)
);

/// Combinator modules, mirroring `proptest::prop`.
pub mod prop {
    /// Collection strategies.
    pub mod collection {
        use super::super::{Strategy, TestRng};
        use rand::Rng;
        use std::ops::Range;

        /// `Vec` strategy: `len` elements drawn from `element`.
        #[derive(Debug, Clone)]
        pub struct VecStrategy<S> {
            element: S,
            len: Range<usize>,
        }

        /// Vector of values from `element`, with length in `len`.
        pub fn vec<S: Strategy>(element: S, len: Range<usize>) -> VecStrategy<S> {
            VecStrategy { element, len }
        }

        impl<S: Strategy> Strategy for VecStrategy<S> {
            type Value = Vec<S::Value>;
            fn sample(&self, rng: &mut TestRng) -> Self::Value {
                let n = rng.gen_range(self.len.clone());
                (0..n).map(|_| self.element.sample(rng)).collect()
            }
        }
    }
}

/// Everything a proptest file usually imports.
pub mod prelude {
    pub use crate::{
        any, prop, prop_assert, prop_assert_eq, prop_assert_ne, proptest, Any, ProptestConfig,
        Strategy, TestCaseError,
    };
}

/// Derive the per-test RNG seed from the property name (deterministic
/// across runs and machines).
pub fn seed_for(name: &str) -> u64 {
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    for b in name.bytes() {
        h ^= b as u64;
        h = h.wrapping_mul(0x1000_0000_01b3);
    }
    h
}

/// Run a property closure over `cases` sampled inputs.
///
/// # Panics
///
/// Panics (failing the enclosing `#[test]`) when the property returns
/// [`TestCaseError::Fail`] for any case.
pub fn run_cases<T, G, F>(name: &str, config: &ProptestConfig, mut generate: G, mut check: F)
where
    T: fmt::Debug,
    G: FnMut(&mut TestRng) -> T,
    F: FnMut(&T) -> Result<(), TestCaseError>,
{
    let mut rng = TestRng::seed_from_u64(seed_for(name));
    let mut rejected = 0u32;
    let mut run = 0u32;
    let budget = config.cases.saturating_mul(8).max(64);
    let mut drawn = 0u32;
    while run < config.cases && drawn < budget {
        drawn += 1;
        let input = generate(&mut rng);
        match check(&input) {
            Ok(()) => run += 1,
            Err(TestCaseError::Reject(_)) => rejected += 1,
            Err(TestCaseError::Fail(msg)) => panic!(
                "proptest `{name}` failed after {run} passing case(s): {msg}\n  input: {input:?}"
            ),
        }
    }
    assert!(
        run > 0,
        "proptest `{name}`: all {rejected} drawn inputs were rejected"
    );
}

/// The proptest entry macro (vendored subset).
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($config:expr)]
     $($(#[$meta:meta])*
       fn $name:ident($($arg:ident in $strategy:expr),+ $(,)?) $body:block)*) => {
        $(
            $(#[$meta])*
            fn $name() {
                let config: $crate::ProptestConfig = $config;
                $crate::run_cases(
                    stringify!($name),
                    &config,
                    |rng| ($($crate::Strategy::sample(&($strategy), rng),)+),
                    |&($(ref $arg,)+)| {
                        $(let $arg = ::std::clone::Clone::clone($arg);)+
                        { $body }
                        ::std::result::Result::Ok(())
                    },
                );
            }
        )*
    };
    ($($(#[$meta:meta])*
       fn $name:ident($($arg:ident in $strategy:expr),+ $(,)?) $body:block)*) => {
        $crate::proptest! {
            #![proptest_config($crate::ProptestConfig::default())]
            $($(#[$meta])* fn $name($($arg in $strategy),+) $body)*
        }
    };
}

/// Assert a condition inside a property, failing the case (not panicking).
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, "assertion failed: {}", stringify!($cond))
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !$cond {
            return ::std::result::Result::Err($crate::TestCaseError::fail(format!($($fmt)+)));
        }
    };
}

/// Assert equality inside a property.
#[macro_export]
macro_rules! prop_assert_eq {
    ($lhs:expr, $rhs:expr) => {{
        let (l, r) = (&$lhs, &$rhs);
        if !(*l == *r) {
            return ::std::result::Result::Err($crate::TestCaseError::fail(format!(
                "assertion failed: `{} == {}`\n  left: {:?}\n right: {:?}",
                stringify!($lhs), stringify!($rhs), l, r
            )));
        }
    }};
    ($lhs:expr, $rhs:expr, $($fmt:tt)+) => {{
        let (l, r) = (&$lhs, &$rhs);
        if !(*l == *r) {
            return ::std::result::Result::Err($crate::TestCaseError::fail(format!(
                "{}\n  left: {:?}\n right: {:?}",
                format!($($fmt)+), l, r
            )));
        }
    }};
}

/// Assert inequality inside a property.
#[macro_export]
macro_rules! prop_assert_ne {
    ($lhs:expr, $rhs:expr) => {{
        let (l, r) = (&$lhs, &$rhs);
        if *l == *r {
            return ::std::result::Result::Err($crate::TestCaseError::fail(format!(
                "assertion failed: `{} != {}`\n  both: {:?}",
                stringify!($lhs), stringify!($rhs), l
            )));
        }
    }};
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        #[test]
        fn ranges_and_any(x in 0u64..100, y in any::<u32>(), v in prop::collection::vec((0u64..10, any::<u8>()), 1..5)) {
            prop_assert!(x < 100);
            let _ = y;
            prop_assert!(!v.is_empty() && v.len() < 5);
            for (a, _) in v {
                prop_assert!(a < 10, "a = {}", a);
            }
        }
    }

    #[test]
    #[should_panic(expected = "failed after")]
    fn failures_panic() {
        crate::run_cases(
            "failures_panic",
            &ProptestConfig::with_cases(4),
            |rng| rand::Rng::gen_range(rng, 0u64..10),
            |&x| {
                prop_assert!(x > 100, "x = {}", x);
                Ok(())
            },
        );
    }
}
