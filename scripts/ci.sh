#!/usr/bin/env bash
# Tier-1 verification gate. Every PR must pass this script unchanged:
#
#   1. release build of the whole workspace,
#   2. the full test suite (unit + integration + property + doc tests),
#   3. a smoke verification campaign — 2 workloads x 2 configs x 4
#      torture seeds (12 jobs) sharded over 4 workers, with a hard
#      wall-clock timeout and a JSON-validity check on the report,
#   4. a perf smoke — one kernel under full telemetry; the PerfSnapshot
#      artifact must have a live CPI stack and nonzero cache/DRAM
#      counters, and perf_report must render it cleanly.
#
# The campaign step is what the paper calls the verification flow: any
# DUT regression that makes a workload diverge, hang, or panic fails
# the gate with a minimized reproducer in the report.
set -euo pipefail
cd "$(dirname "$0")/.."

echo "== tier-1: cargo build --release =="
cargo build --release

echo "== tier-1: cargo test -q =="
cargo test -q

echo "== tier-1: cargo test -q --workspace =="
cargo test -q --workspace

echo "== tier-1: smoke campaign (2 workloads x 2 configs x 4 seeds) =="
report="$(mktemp /tmp/campaign-smoke.XXXXXX.json)"
perf_report_json="$(mktemp /tmp/perf-smoke.XXXXXX.json)"
perf_snapshot="$(mktemp /tmp/perf-snapshot.XXXXXX.json)"
trap 'rm -f "$report" "$perf_report_json" "$perf_snapshot"' EXIT
timeout 600 target/release/campaign \
    --workloads mcf,libquantum \
    --configs small-nh,small-yqh \
    --torture-seeds 0..4 \
    --workers 4 \
    --out "$report"

python3 - "$report" <<'EOF'
import json, sys
r = json.load(open(sys.argv[1]))
assert r["schema_version"] == 1, r["schema_version"]
s = r["summary"]
assert s["total"] == 12 and s["halted"] == 12, s
assert len(r["jobs"]) == 12
assert all(j["cycles"] > 0 and j["commits_checked"] > 0 for j in r["jobs"])
assert "timing" in r
print("smoke campaign report OK:", s)
EOF

echo "== tier-1: perf smoke (mcf under telemetry) =="
timeout 300 target/release/campaign \
    --workloads mcf \
    --configs small-nh \
    --telemetry \
    --workers 1 \
    --out "$perf_report_json"

python3 - "$perf_report_json" "$perf_snapshot" <<'EOF'
import json, sys
r = json.load(open(sys.argv[1]))
perf = r["jobs"][0]["perf"]
cpi = {}
for core in perf["cores"]:
    for k, v in core["perf"]["cpi"].items():
        cpi[k] = cpi.get(k, 0) + v
cycles = max(c["perf"]["cycles"] for c in perf["cores"])
assert sum(cpi.values()) == cycles * perf["commit_width"], cpi
# The CPI components a real kernel run must exercise (rob_full/iq_full
# can legitimately stay zero on a short run).
for key in ("retired", "frontend_starved", "mispredict_recovery", "memory_stall"):
    assert cpi[key] > 0, f"CPI component {key} is zero: {cpi}"
caches = {c["name"]: c["stats"] for c in perf["caches"]}
l1d = [s for n, s in caches.items() if n.startswith("l1d")]
assert l1d and all(s["hits"] > 0 and s["misses"] > 0 for s in l1d), caches
assert perf["dram"]["accesses"] > 0, perf["dram"]
assert all(c["perf"]["rob_occupancy"]["samples"] > 0 for c in perf["cores"])
assert perf["mem_latency"]["l1_hit"]["samples"] > 0, perf["mem_latency"]
# Extract the bare snapshot artifact for the perf_report CLI smoke.
json.dump(perf, open(sys.argv[2], "w"))
print("perf smoke OK: CPI identity holds, all probe families live")
EOF

target/release/perf_report "$perf_report_json" > /dev/null
target/release/perf_report "$perf_snapshot" | head -12

echo "== tier-1 gate passed =="
