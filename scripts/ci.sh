#!/usr/bin/env bash
# Tier-1 verification gate. Every PR must pass this script unchanged:
#
#   1. release build of the whole workspace,
#   2. the full test suite (unit + integration + property + doc tests),
#   3. a smoke verification campaign — 2 workloads x 2 configs x 4
#      torture seeds (12 jobs) sharded over 4 workers, with a hard
#      wall-clock timeout and a JSON-validity check on the report.
#
# The campaign step is what the paper calls the verification flow: any
# DUT regression that makes a workload diverge, hang, or panic fails
# the gate with a minimized reproducer in the report.
set -euo pipefail
cd "$(dirname "$0")/.."

echo "== tier-1: cargo build --release =="
cargo build --release

echo "== tier-1: cargo test -q =="
cargo test -q

echo "== tier-1: cargo test -q --workspace =="
cargo test -q --workspace

echo "== tier-1: smoke campaign (2 workloads x 2 configs x 4 seeds) =="
report="$(mktemp /tmp/campaign-smoke.XXXXXX.json)"
trap 'rm -f "$report"' EXIT
timeout 600 target/release/campaign \
    --workloads mcf,libquantum \
    --configs small-nh,small-yqh \
    --torture-seeds 0..4 \
    --workers 4 \
    --out "$report"

python3 - "$report" <<'EOF'
import json, sys
r = json.load(open(sys.argv[1]))
assert r["schema_version"] == 1, r["schema_version"]
s = r["summary"]
assert s["total"] == 12 and s["halted"] == 12, s
assert len(r["jobs"]) == 12
assert all(j["cycles"] > 0 and j["commits_checked"] > 0 for j in r["jobs"])
assert "timing" in r
print("smoke campaign report OK:", s)
EOF

echo "== tier-1 gate passed =="
