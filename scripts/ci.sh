#!/usr/bin/env bash
# Tier-1 verification gate. Every PR must pass this script unchanged:
#
#   1. release build of the whole workspace,
#   2. the full test suite (unit + integration + property + doc tests),
#   3. a smoke verification campaign — 2 workloads x 2 configs x 4
#      torture seeds (12 jobs) sharded over 4 workers, with a hard
#      wall-clock timeout and a JSON-validity check on the report,
#   4. a perf smoke — one kernel under full telemetry; the PerfSnapshot
#      artifact must have a live CPI stack and nonzero cache/DRAM
#      counters, and perf_report must render it cleanly,
#   5. a triage smoke — an injected-bug campaign with LightSSS on must
#      produce a self-contained replay bundle, and `replay --bundle`
#      must reproduce the divergence at the identical commit index,
#   6. a lifecycle smoke — a 12-job injected-bug campaign must produce
#      failing jobs whose bundles carry a non-empty crash-ring lifecycle
#      snapshot, pipeview must render one (waterfall and O3PipeView),
#      and two identical full-trace `--lifecycle` campaigns must emit
#      byte-identical deterministic report bodies with a live digest,
#   7. a fuzz smoke — two identical coverage-guided campaigns must emit
#      byte-identical deterministic report bodies with coverage growing
#      strictly round-over-round, and an injected-bug fuzz campaign must
#      find, triage, and replay the divergence,
#   8. an mp smoke — two identical 12-job multi-hart litmus fuzz
#      rounds must emit byte-identical deterministic report bodies,
#      divergence-free with live `mp:` coherence coverage, and the same
#      campaign with the §IV-C L2 probe/grant race injected must raise
#      a ForbiddenOutcome, minimize it, bundle it, and `replay
#      --bundle` must reproduce it at the identical commit index,
#   9. a bench smoke — scripts/bench.sh emits a schema-clean
#      BENCH_fig8.json covering every interpreter personality and the
#      cycle model on both small presets; the regenerated cycle_model
#      body (cycles / instret / cpi_milli) must match the committed
#      BENCH_fig8.json exactly and timing.sim_kilocycles_per_sec must be
#      present and nonzero (no wall-clock threshold — rates are
#      machine-dependent); the golden_bench pins pass, and a 12-job
#      campaign with the superblock trace tier as the DiffTest REF runs
#      to completion twice with byte-identical deterministic report
#      bodies,
#  10. a sampling smoke — `campaign --sample` profiles one kernel,
#      materializes at least 2 checkpoints into a reuse directory, fans
#      the sample jobs through the worker pool, and exits 0 with a
#      schema-clean `sampling` section; every sample window obeys the
#      top-down identity (CPI-stack sum == window cycles x commit
#      width), and a second run answering from the checkpoint cache
#      emits a byte-identical deterministic report body.
#
# The campaign step is what the paper calls the verification flow: any
# DUT regression that makes a workload diverge, hang, or panic fails
# the gate with a minimized reproducer in the report.
set -euo pipefail
cd "$(dirname "$0")/.."

echo "== tier-1: cargo build --release =="
cargo build --release

echo "== tier-1: cargo test -q =="
cargo test -q

echo "== tier-1: cargo test -q --workspace =="
cargo test -q --workspace

echo "== tier-1: smoke campaign (2 workloads x 2 configs x 4 seeds) =="
report="$(mktemp /tmp/campaign-smoke.XXXXXX.json)"
perf_report_json="$(mktemp /tmp/perf-smoke.XXXXXX.json)"
perf_snapshot="$(mktemp /tmp/perf-snapshot.XXXXXX.json)"
trap 'rm -f "$report" "$perf_report_json" "$perf_snapshot"' EXIT
timeout 600 target/release/campaign \
    --workloads mcf,libquantum \
    --configs small-nh,small-yqh \
    --torture-seeds 0..4 \
    --workers 4 \
    --out "$report"

python3 - "$report" <<'EOF'
import json, sys
r = json.load(open(sys.argv[1]))
assert r["schema_version"] == 6, r["schema_version"]
s = r["summary"]
assert s["total"] == 12 and s["halted"] == 12, s
assert len(r["jobs"]) == 12
assert all(j["cycles"] > 0 and j["commits_checked"] > 0 for j in r["jobs"])
assert "timing" in r
print("smoke campaign report OK:", s)
EOF

echo "== tier-1: perf smoke (mcf under telemetry) =="
timeout 300 target/release/campaign \
    --workloads mcf \
    --configs small-nh \
    --telemetry \
    --workers 1 \
    --out "$perf_report_json"

python3 - "$perf_report_json" "$perf_snapshot" <<'EOF'
import json, sys
r = json.load(open(sys.argv[1]))
perf = r["jobs"][0]["perf"]
cpi = {}
for core in perf["cores"]:
    for k, v in core["perf"]["cpi"].items():
        cpi[k] = cpi.get(k, 0) + v
cycles = max(c["perf"]["cycles"] for c in perf["cores"])
assert sum(cpi.values()) == cycles * perf["commit_width"], cpi
# The CPI components a real kernel run must exercise (rob_full/iq_full
# can legitimately stay zero on a short run).
for key in ("retired", "frontend_starved", "mispredict_recovery", "memory_stall"):
    assert cpi[key] > 0, f"CPI component {key} is zero: {cpi}"
caches = {c["name"]: c["stats"] for c in perf["caches"]}
l1d = [s for n, s in caches.items() if n.startswith("l1d")]
assert l1d and all(s["hits"] > 0 and s["misses"] > 0 for s in l1d), caches
assert perf["dram"]["accesses"] > 0, perf["dram"]
assert all(c["perf"]["rob_occupancy"]["samples"] > 0 for c in perf["cores"])
assert perf["mem_latency"]["l1_hit"]["samples"] > 0, perf["mem_latency"]
# Extract the bare snapshot artifact for the perf_report CLI smoke.
json.dump(perf, open(sys.argv[2], "w"))
print("perf smoke OK: CPI identity holds, all probe families live")
EOF

target/release/perf_report "$perf_report_json" > /dev/null
# Capture then head (see the pipeview note below): a direct pipe into
# head races SIGPIPE against the writer under pipefail.
target/release/perf_report "$perf_snapshot" > "$perf_snapshot.render"
head -12 "$perf_snapshot.render"
rm -f "$perf_snapshot.render"

echo "== tier-1: triage smoke (injected bug -> bundle -> replay) =="
triage_report="$(mktemp /tmp/triage-smoke.XXXXXX.json)"
bundle_dir="$(mktemp -d /tmp/triage-bundles.XXXXXX)"
trap 'rm -f "$report" "$perf_report_json" "$perf_snapshot" "$triage_report"; rm -rf "$bundle_dir"' EXIT
# The injected MulLowBit bug must make some seeds diverge, so the
# campaign exits 1 by contract; any other status is a failure.
set +e
timeout 600 target/release/campaign \
    --torture-seeds 0..3 \
    --configs small-nh \
    --inject-bug mul-low-bit \
    --lightsss 2000 \
    --max-cycles 8000000 \
    --workers 3 \
    --no-minimize \
    --bundle-dir "$bundle_dir" \
    --out "$triage_report"
rc=$?
set -e
if [ "$rc" -ne 1 ]; then
    echo "triage smoke: expected exit 1 (diverged jobs), got $rc" >&2
    exit 1
fi

bundle_file="$(python3 - "$triage_report" "$bundle_dir" <<'EOF'
import json, os, sys
r = json.load(open(sys.argv[1]))
assert r["schema_version"] == 6, r["schema_version"]
diverged = [j for j in r["jobs"] if "Diverged" in j["verdict"]]
assert diverged, "injected bug produced no divergence"
bundled = [j for j in diverged if j.get("triage")]
assert bundled, "diverged jobs carry no triage bundle"
j = bundled[0]
b = j["triage"]
assert b["trigger"] == "diverged" and b["reproduced"], b["trigger"]
assert b["at_commit"] > 0 and b["commit_tail"], "bundle lacks the commit anchor/tail"
path = os.path.join(sys.argv[2], f"job{j['index']}.bundle.json")
assert os.path.exists(path), f"bundle file missing: {path}"
print(path)
EOF
)"
echo "triage smoke bundle: $bundle_file"
# The bundle alone must reproduce the divergence at the same commit
# index (replay exits 0 only on REPRODUCED).
timeout 300 target/release/replay --bundle "$bundle_file"

echo "== tier-1: lifecycle smoke (12-job injected bug -> crash ring -> pipeview) =="
life_report="$(mktemp /tmp/lifecycle-bug.XXXXXX.json)"
life_bundles="$(mktemp -d /tmp/lifecycle-bundles.XXXXXX)"
life_a="$(mktemp /tmp/lifecycle-a.XXXXXX.json)"
life_b="$(mktemp /tmp/lifecycle-b.XXXXXX.json)"
trap 'rm -f "$report" "$perf_report_json" "$perf_snapshot" "$triage_report" "$life_report" "$life_a" "$life_b"; rm -rf "$bundle_dir" "$life_bundles"' EXIT
set +e
timeout 600 target/release/campaign \
    --torture-seeds 0..6 \
    --configs small-nh,small-yqh \
    --inject-bug mul-low-bit \
    --lightsss 2000 \
    --max-cycles 8000000 \
    --workers 4 \
    --no-minimize \
    --bundle-dir "$life_bundles" \
    --out "$life_report"
rc=$?
set -e
if [ "$rc" -ne 1 ]; then
    echo "lifecycle smoke: expected exit 1 (diverged jobs), got $rc" >&2
    exit 1
fi

# Every failing job's bundle must carry the always-on crash ring: the
# last uops in flight before the divergence, capped and cause-tagged.
life_bundle="$(python3 - "$life_report" "$life_bundles" <<'EOF'
import json, os, sys
r = json.load(open(sys.argv[1]))
assert r["schema_version"] == 6, r["schema_version"]
assert len(r["jobs"]) == 12, len(r["jobs"])
bundled = [j for j in r["jobs"] if j.get("triage")]
assert bundled, "injected bug produced no triage bundle"
for j in bundled:
    b = j["triage"]
    assert b["schema_version"] == 5, b["schema_version"]
    ring = b["lifecycle_ring"]
    assert ring, f"job {j['index']}: bundle has an empty crash ring"
    assert len(ring) <= 64, f"job {j['index']}: ring overflows its cap: {len(ring)}"
    assert all(rec["committed"] > 0 or rec["cause"] for rec in ring), \
        f"job {j['index']}: ring record neither retired nor cause-tagged"
    assert all(rec["stamps"]["fetched"] > 0 for rec in ring), \
        f"job {j['index']}: unfetched ring record"
print(os.path.join(sys.argv[2], f"job{bundled[0]['index']}.bundle.json"))
EOF
)"
echo "lifecycle smoke bundle: $life_bundle"
# pipeview renders the bundle's ring as a waterfall and as O3PipeView.
# Capture then head: piping pipeview straight into `head -8` races —
# head exiting first sends SIGPIPE and the broken-pipe panic fails the
# pipeline under pipefail.
timeout 300 target/release/pipeview --bundle "$life_bundle" > "$life_bundle.pipeview"
head -8 "$life_bundle.pipeview"
rm -f "$life_bundle.pipeview"
timeout 300 target/release/pipeview --bundle "$life_bundle" --o3 > /dev/null
target/release/perf_report "$life_report" --lifecycle > /dev/null

# Full-trace mode: two identical --lifecycle campaigns must agree byte
# for byte once the timing section is dropped, digest included.
for f in "$life_a" "$life_b"; do
    timeout 600 target/release/campaign \
        --workloads mcf,libquantum \
        --configs small-nh \
        --torture-seeds 0..2 \
        --lifecycle \
        --workers 3 \
        --out "$f"
done

python3 - "$life_a" "$life_b" <<'EOF'
import json, sys
a = json.load(open(sys.argv[1]))
b = json.load(open(sys.argv[2]))
assert a["schema_version"] == 6, a["schema_version"]
for r in (a, b):
    del r["timing"]
assert json.dumps(a, sort_keys=True) == json.dumps(b, sort_keys=True), \
    "--lifecycle campaign bodies differ between identical runs"
digests = [c["perf"]["lifecycle"] for j in a["jobs"] for c in j["perf"]["cores"]]
assert any(d["retired"] > 0 for d in digests), "lifecycle digest never counted a retire"
retired = sum(d["retired"] for d in digests)
print("lifecycle smoke OK: deterministic body, digest retired =", retired)
EOF

echo "== tier-1: fuzz smoke (determinism + coverage growth) =="
fuzz_a="$(mktemp /tmp/fuzz-smoke-a.XXXXXX.json)"
fuzz_b="$(mktemp /tmp/fuzz-smoke-b.XXXXXX.json)"
fuzz_bug="$(mktemp /tmp/fuzz-bug.XXXXXX.json)"
fuzz_bundles="$(mktemp -d /tmp/fuzz-bundles.XXXXXX)"
trap 'rm -f "$report" "$perf_report_json" "$perf_snapshot" "$triage_report" "$life_a" "$life_b" "$fuzz_a" "$fuzz_b" "$fuzz_bug"; rm -rf "$bundle_dir" "$fuzz_bundles"' EXIT
# Same seed + same worker count twice: the deterministic body (report
# minus the "timing" section) must be byte-identical, and every round
# must contribute new coverage.
for f in "$fuzz_a" "$fuzz_b"; do
    timeout 300 target/release/campaign \
        --fuzz --rounds 2 --fuzz-jobs 8 --fuzz-seed 5 \
        --configs small-nh \
        --workers 4 \
        --out "$f"
done

python3 - "$fuzz_a" "$fuzz_b" <<'EOF'
import json, sys
a = json.load(open(sys.argv[1]))
b = json.load(open(sys.argv[2]))
assert a["schema_version"] == 6, a["schema_version"]
for r in (a, b):
    del r["timing"]
assert json.dumps(a, sort_keys=True) == json.dumps(b, sort_keys=True), \
    "fuzz report bodies differ between identical runs"
f = a["fuzz"]
assert len(f["rounds"]) == 2, f
for rnd in f["rounds"]:
    assert rnd["new_features"] > 0, f"round {rnd['round']} found no new coverage: {f}"
cums = [rnd["cumulative_features"] for rnd in f["rounds"]]
assert all(x < y for x, y in zip(cums, cums[1:])), f"coverage not strictly growing: {cums}"
assert f["total_features"] == cums[-1], f
assert all(j.get("coverage") for j in a["jobs"]), "fuzz jobs missing coverage maps"
print("fuzz smoke OK: deterministic body, coverage", cums)
EOF

echo "== tier-1: fuzz smoke (injected bug -> triage -> replay) =="
set +e
timeout 300 target/release/campaign \
    --fuzz --rounds 2 --fuzz-jobs 4 --fuzz-seed 5 \
    --configs small-nh \
    --inject-bug mul-low-bit \
    --lightsss 2000 \
    --workers 2 \
    --no-minimize \
    --bundle-dir "$fuzz_bundles" \
    --out "$fuzz_bug"
rc=$?
set -e
if [ "$rc" -ne 1 ]; then
    echo "fuzz bug smoke: expected exit 1 (diverged jobs), got $rc" >&2
    exit 1
fi

fuzz_bundle="$(python3 - "$fuzz_bug" "$fuzz_bundles" <<'EOF'
import json, os, sys
r = json.load(open(sys.argv[1]))
diverged = [j for j in r["jobs"] if "Diverged" in j["verdict"]]
assert diverged, "fuzz campaign missed the injected bug"
bundled = [j for j in diverged if j.get("triage")]
assert bundled, "diverged fuzz jobs carry no triage bundle"
j = bundled[0]
b = j["triage"]
assert b["trigger"] == "diverged" and b["reproduced"], b
assert b["job_index"] == j["index"], "fuzz job re-indexing broke the bundle"
path = os.path.join(sys.argv[2], f"job{j['index']}.bundle.json")
assert os.path.exists(path), f"bundle file missing: {path}"
print(path)
EOF
)"
echo "fuzz bug bundle: $fuzz_bundle"
timeout 300 target/release/replay --bundle "$fuzz_bundle"

echo "== tier-1: mp smoke (litmus determinism + coherence coverage) =="
mp_a="$(mktemp /tmp/mp-smoke-a.XXXXXX.json)"
mp_b="$(mktemp /tmp/mp-smoke-b.XXXXXX.json)"
mp_race="$(mktemp /tmp/mp-race.XXXXXX.json)"
mp_bundles="$(mktemp -d /tmp/mp-bundles.XXXXXX)"
trap 'rm -f "$report" "$perf_report_json" "$perf_snapshot" "$triage_report" "$life_a" "$life_b" "$fuzz_a" "$fuzz_b" "$fuzz_bug" "$mp_a" "$mp_b" "$mp_race"; rm -rf "$bundle_dir" "$fuzz_bundles" "$mp_bundles"' EXIT
# Same seed twice on the dual-core preset: the deterministic body must
# be byte-identical, every job must halt with an allowed outcome, and
# the coherence (`mp:`) coverage family must be live.
for f in "$mp_a" "$mp_b"; do
    timeout 600 target/release/campaign \
        --fuzz --mp --rounds 1 --fuzz-jobs 12 --fuzz-seed 0 \
        --configs small-nh \
        --max-cycles 400000 \
        --workers 4 \
        --out "$f"
done

python3 - "$mp_a" "$mp_b" <<'EOF'
import json, sys
a = json.load(open(sys.argv[1]))
b = json.load(open(sys.argv[2]))
assert a["schema_version"] == 6, a["schema_version"]
for r in (a, b):
    del r["timing"]
assert json.dumps(a, sort_keys=True) == json.dumps(b, sort_keys=True), \
    "mp campaign bodies differ between identical runs"
s = a["summary"]
assert s["total"] == 12 and s["halted"] == 12, s
assert s["diverged"] == 0 and s["forbidden"] == 0, s
mp = set()
for j in a["jobs"]:
    mp |= {k for k, n in (j.get("coverage") or {}).get("mp") or [] if n > 0}
assert mp, "mp campaign recorded no coherence coverage"
print("mp smoke OK: deterministic body, mp features:", sorted(mp))
EOF

echo "== tier-1: mp smoke (L2 probe/grant race -> forbidden outcome -> replay) =="
# The injected probe/grant race corrupts a litmus line inside its race
# window; the outcome oracle must flag the forbidden observation, so
# the campaign exits 1 by contract.
set +e
timeout 600 target/release/campaign \
    --fuzz --mp --rounds 1 --fuzz-jobs 12 --fuzz-seed 0 \
    --configs small-nh \
    --inject-l2-race \
    --max-cycles 400000 \
    --workers 4 \
    --bundle-dir "$mp_bundles" \
    --out "$mp_race"
rc=$?
set -e
if [ "$rc" -ne 1 ]; then
    echo "mp race smoke: expected exit 1 (forbidden outcomes), got $rc" >&2
    exit 1
fi

mp_bundle="$(python3 - "$mp_race" "$mp_bundles" <<'EOF'
import json, os, sys
r = json.load(open(sys.argv[1]))
assert r["summary"]["forbidden"] >= 1, r["summary"]
bad = [j for j in r["jobs"] if "ForbiddenOutcome" in j["verdict"]]
assert bad, "forbidden tally has no matching job verdict"
j = bad[0]
m = j["minimized"]
assert m and m["error_class"] == "ForbiddenOutcome", m
assert m["litmus"] and not m["torture"], "minimized repro lost its litmus recipe"
b = j["triage"]
assert b and b["trigger"] == "forbidden-outcome" and b["reproduced"], b
assert b["forbidden_exit"], "bundle lacks the forbidden exit word"
path = os.path.join(sys.argv[2], f"job{j['index']}.bundle.json")
assert os.path.exists(path), f"bundle file missing: {path}"
print(path)
EOF
)"
echo "mp race bundle: $mp_bundle"
timeout 300 target/release/replay --bundle "$mp_bundle"

echo "== tier-1: bench smoke (BENCH_fig8.json + --ref nemu-trace campaign) =="
bench_json="$(mktemp /tmp/bench-smoke.XXXXXX.json)"
trace_a="$(mktemp /tmp/trace-ref-a.XXXXXX.json)"
trace_b="$(mktemp /tmp/trace-ref-b.XXXXXX.json)"
trap 'rm -f "$report" "$perf_report_json" "$perf_snapshot" "$triage_report" "$life_a" "$life_b" "$fuzz_a" "$fuzz_b" "$fuzz_bug" "$mp_a" "$mp_b" "$mp_race" "$bench_json" "$trace_a" "$trace_b"; rm -rf "$bundle_dir" "$fuzz_bundles" "$mp_bundles"' EXIT
# Reduced fuel keeps the leg fast; the committed BENCH_fig8.json (which
# golden_bench pins for speed ordering) is generated at full budget.
MINJIE_BENCH_FUEL=20000000 MINJIE_BENCH_OUT="$bench_json" scripts/bench.sh

python3 - "$bench_json" BENCH_fig8.json <<'EOF'
import json, math, sys
r = json.load(open(sys.argv[1]))
committed = json.load(open(sys.argv[2]))
assert r["schema_version"] == 4, r["schema_version"]
assert r["figure"] == "fig8"
ps = r["personalities"]
assert len(ps) >= 5, f"personality set shrank: {sorted(ps)}"
counts = {p["instructions"] for p in ps.values()}
assert len(counts) == 1, f"personalities disagree on retired instructions: {ps}"
assert r["campaign"]["ref"] == "nemu-trace"
assert r["campaign"]["halted"] == r["campaign"]["jobs"] > 0, r["campaign"]
assert set(r["timing"]["mips"]) == set(ps), "timing.mips personality set drifted"
cm = r["cycle_model"]
assert set(cm) == {"small-nh", "small-yqh"}, f"cycle-model preset set drifted: {sorted(cm)}"
for preset, e in cm.items():
    assert e["cycles"] > 0 and e["instret"] > 0, (preset, e)
    assert e["cpi_milli"] == e["cycles"] * 1000 // e["instret"], (preset, e)
# The cycle model is deterministic and its budget (MINJIE_BENCH_CYCLES)
# is not reduced by this smoke, so the regenerated body must match the
# committed BENCH_fig8.json exactly — a drift means the microarchitecture
# changed without regenerating the committed report.
assert cm == committed["cycle_model"], (
    f"cycle_model drifted from committed BENCH_fig8.json:\n"
    f"  regenerated: {cm}\n  committed:   {committed['cycle_model']}"
)
# Simulation rates are machine-dependent: assert presence and sanity
# only, never a wall-clock threshold.
rates = r["timing"]["sim_kilocycles_per_sec"]
assert set(rates) == set(cm), "cycle-model rate set drifted"
for preset, kcps in rates.items():
    assert math.isfinite(kcps) and kcps > 0, (preset, kcps)
by_wl = r["timing"]["sim_kilocycles_per_sec_by_workload"]
assert set(by_wl) == set(cm), "per-workload rate preset set drifted"
for preset, entries in by_wl.items():
    assert entries, f"{preset}: empty per-workload rate map"
    for name, kcps in entries.items():
        assert math.isfinite(kcps) and kcps > 0, (preset, name, kcps)
print("bench smoke report OK:", {n: round(m, 1) for n, m in r["timing"]["mips"].items()},
      {p: e["cpi_milli"] for p, e in cm.items()},
      {p: round(k, 1) for p, k in rates.items()})
EOF

cargo test -q --test golden_bench

# The trace tier as the DiffTest REF: same 12-job smoke as step 3, run
# twice; both must halt everywhere and agree byte for byte once the
# timing section is dropped.
for f in "$trace_a" "$trace_b"; do
    timeout 600 target/release/campaign \
        --workloads mcf,libquantum \
        --configs small-nh,small-yqh \
        --torture-seeds 0..4 \
        --workers 4 \
        --ref nemu-trace \
        --out "$f"
done

python3 - "$trace_a" "$trace_b" <<'EOF'
import json, sys
a = json.load(open(sys.argv[1]))
b = json.load(open(sys.argv[2]))
s = a["summary"]
assert s["total"] == 12 and s["halted"] == 12, s
for r in (a, b):
    del r["timing"]
assert json.dumps(a, sort_keys=True) == json.dumps(b, sort_keys=True), \
    "--ref nemu-trace campaign bodies differ between identical runs"
print("trace-REF campaign OK:", s)
EOF

echo "== tier-1: sampling smoke (checkpoint farm -> weighted CPI) =="
sample_a="$(mktemp /tmp/sample-smoke-a.XXXXXX.json)"
sample_b="$(mktemp /tmp/sample-smoke-b.XXXXXX.json)"
ckpt_dir="$(mktemp -d /tmp/sample-ckpts.XXXXXX)"
trap 'rm -f "$report" "$perf_report_json" "$perf_snapshot" "$triage_report" "$life_a" "$life_b" "$fuzz_a" "$fuzz_b" "$fuzz_bug" "$mp_a" "$mp_b" "$mp_race" "$bench_json" "$trace_a" "$trace_b" "$sample_a" "$sample_b"; rm -rf "$bundle_dir" "$fuzz_bundles" "$mp_bundles" "$ckpt_dir"' EXIT
# Two identical farms sharing one checkpoint directory: the first
# profiles and materializes the blobs, the second must answer from the
# cache, and both deterministic bodies must agree byte for byte.
for f in "$sample_a" "$sample_b"; do
    timeout 600 target/release/campaign \
        --sample \
        --workloads sjeng \
        --configs small-nh,small-yqh \
        --interval 5000 \
        --max-checkpoints 3 \
        --checkpoint-dir "$ckpt_dir" \
        --workers 3 \
        --out "$f"
done

blobs=$(ls "$ckpt_dir"/*.ckpt 2>/dev/null | wc -l)
if [ "$blobs" -lt 2 ]; then
    echo "sampling smoke: expected >= 2 checkpoint blobs in $ckpt_dir, got $blobs" >&2
    exit 1
fi

python3 - "$sample_a" "$sample_b" <<'EOF'
import json, sys
a = json.load(open(sys.argv[1]))
b = json.load(open(sys.argv[2]))
assert a["schema_version"] == 6, a["schema_version"]
sampling = a["sampling"]
assert len(sampling) == 2, f"one summary per config cell: {len(sampling)}"
for sm in sampling:
    assert sm["workload"] == "kernel:sjeng" and sm["ref_model"] == "nemu-trace", sm
    assert sm["checkpoints"] >= 2 and sm["aggregated"] >= 2, sm
    assert 0 < sm["weighted_cpi_milli"] < 50_000, sm
    assert sum(p["members"] for p in sm["phases"]) <= sm["total_intervals"], sm
# Every measured window obeys the top-down identity exactly.
sampled_jobs = [j for j in a["jobs"] if j.get("sample")]
assert sampled_jobs, "no sample records in the report"
for j in sampled_jobs:
    s = j["sample"]
    if s["window_cycles"] == 0:
        continue
    stack = sum(s["cpi_stack"].values())
    width = j["perf"]["commit_width"]
    assert stack == s["window_cycles"] * width, \
        f"job {j['index']}: CPI-stack sum {stack} != {s['window_cycles']} x {width}"
for r in (a, b):
    del r["timing"]
assert json.dumps(a, sort_keys=True) == json.dumps(b, sort_keys=True), \
    "sampled campaign bodies differ between identical runs (cache round-trip)"
print("sampling smoke OK:",
      {f"{sm['config']}": sm["weighted_cpi_milli"] for sm in sampling})
EOF
target/release/perf_report "$sample_a" > /dev/null

echo "== tier-1 gate passed =="
