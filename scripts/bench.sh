#!/usr/bin/env bash
# Tracked-benchmark runner: regenerates BENCH_fig8.json, the repo's
# interpreter-speed report (paper Fig. 8).
#
# The report body (everything but the "timing" section) is deterministic
# — retired-instruction totals per personality, campaign job outcomes —
# so diffs of the committed file show real behavior changes; the
# wall-clock-derived rates (sim-MIPS per personality, campaign jobs/sec)
# are segregated under "timing". tests/golden_bench.rs checks the schema
# and pins the trace >= fast >= interp speed ordering.
#
# Environment knobs (forwarded to the bench harness):
#   MINJIE_SCALE=ref        larger workload inputs
#   MINJIE_BENCH_FUEL=N     per-workload step budget (default 2e8)
#   MINJIE_BENCH_OUT=path   output path (default BENCH_fig8.json)
set -euo pipefail
cd "$(dirname "$0")/.."

out="${MINJIE_BENCH_OUT:-BENCH_fig8.json}"
# cargo runs bench binaries from the package directory, so anchor
# relative output paths to the repo root.
case "$out" in
    /*) abs="$out" ;;
    *) abs="$PWD/$out" ;;
esac
MINJIE_BENCH_OUT="$abs" cargo bench -q -p minjie-bench --bench fig8_interpreters
echo "bench report written to $out"
