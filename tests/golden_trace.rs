//! Golden-trace regression tests (ISSUE satellite): three small
//! workloads run on the NH preset and must match a recorded
//! `(commit count, final x10, IPC-to-3-decimals)` triple *exactly*.
//! Any drift in fetch, scheduling, the cache model, or DiffTest
//! accounting shows up here before it shows up as a silent perf or
//! correctness regression. If a change legitimately alters these
//! numbers, re-harvest them with a campaign run and say why in the
//! commit message.

use campaign::{Campaign, JobSpec, Verdict, WorkloadSource};

/// `(kernel, commits checked, final x10, IPC to 3 decimals)` on NH.
const GOLDEN: [(&str, u64, u64, f64); 3] = [
    ("mcf", 20_647, 0xbb1c4, 0.302),
    ("libquantum", 57_374, 0x8, 1.733),
    ("lbm", 68_575, 0x0, 0.346),
];

#[test]
fn golden_traces_match_exactly_on_nh() {
    let jobs: Vec<JobSpec> = GOLDEN
        .iter()
        .map(|(kernel, ..)| JobSpec::new(WorkloadSource::kernel(*kernel), "nh"))
        .collect();
    let report = Campaign::new(jobs).with_workers(3).run();

    for (j, &(kernel, commits, x10, ipc)) in report.jobs.iter().zip(GOLDEN.iter()) {
        let exit = match &j.verdict {
            Verdict::Halted { exit_code } => *exit_code,
            other => panic!("{kernel} did not halt on NH: {other:?}"),
        };
        assert_eq!(
            (j.commits_checked, exit, j.ipc),
            (commits, x10, ipc),
            "golden trace drifted for {kernel} on NH"
        );
    }
}

#[test]
fn golden_traces_are_stable_across_reruns() {
    // The same job twice in one campaign must produce identical records
    // (guards against hidden global state in the simulator).
    let jobs = vec![
        JobSpec::new(WorkloadSource::kernel("mcf"), "nh"),
        JobSpec::new(WorkloadSource::kernel("mcf"), "nh"),
    ];
    let report = Campaign::new(jobs).with_workers(2).run();
    let [a, b] = &report.jobs[..] else {
        panic!("expected two records");
    };
    assert_eq!(a.commits_checked, b.commits_checked);
    assert_eq!(a.cycles, b.cycles);
    assert_eq!(a.ipc, b.ipc);
}
