//! Rollback-replay determinism: the property the whole triage loop
//! rests on. Restoring the older LightSSS snapshot (a COW clone) and
//! re-running to the failure must reproduce the *identical* commit
//! trace and the *identical* diff-rule verdict — replay is a pure
//! function of the snapshot, not of when or how often it runs.

use minjie::{CoSim, CoSimEnd};
use proptest::prelude::*;
use workloads::{TortureConfig, TortureProgram};
use xscore::{InjectedBug, XsConfig};

proptest! {
    // Each case boots a full co-simulation and replays it twice — keep
    // the case count low; the seeds still cover distinct programs.
    #![proptest_config(ProptestConfig::with_cases(6))]

    #[test]
    fn snapshot_replay_is_deterministic(seed in 0u64..64) {
        let tcfg = TortureConfig {
            body_len: 60,
            iterations: 30,
            ..Default::default()
        };
        let program = TortureProgram::generate(seed, &tcfg).emit();
        let cfg = XsConfig::preset("small-nh")
            .expect("preset exists")
            .with_injected_bug(InjectedBug::MulLowBit);
        let mut cosim = CoSim::new(cfg, &program).with_lightsss(500);
        let end = cosim.run(2_000_000);
        let CoSimEnd::Bug(bug) = end else {
            // Not every torture seed executes a Mul: those runs halt
            // cleanly and there is nothing to replay.
            return Ok(());
        };

        // Replay from the retained snapshot twice. Both replays run on
        // independent COW clones of the same snapshot, so they must be
        // indistinguishable: same verdict, same commit anchor, same
        // per-cycle commit trace.
        let r1 = cosim.replay(&bug.error).expect("lightsss enabled");
        let r2 = cosim.replay(&bug.error).expect("lightsss enabled");
        prop_assert!(r1.reproduced, "first replay reproduces");
        prop_assert!(r2.reproduced, "second replay reproduces");
        prop_assert_eq!(r1.at_commit, bug.at_commit, "replay hits the detection anchor");
        prop_assert_eq!(r1.at_commit, r2.at_commit);
        prop_assert_eq!(r1.from_cycle, r2.from_cycle);
        prop_assert_eq!(r1.fallback_reset, r2.fallback_reset);
        prop_assert_eq!(r1.cycles_replayed, r2.cycles_replayed);
        prop_assert_eq!(r1.window_cpi, r2.window_cpi);
        prop_assert_eq!(
            r1.trace.to_json(),
            r2.trace.to_json(),
            "identical commit traces"
        );
    }
}
