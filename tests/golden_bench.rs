//! Golden pins for the tracked `BENCH_fig8.json` interpreter report.
//!
//! Two tiers:
//!
//! 1. **Deterministic** — tiny-fuel measurements through the real
//!    `minjie_bench::fig8` machinery: the emitted report must be
//!    schema-clean, its body (everything but `timing`) must be
//!    byte-identical across two same-seed runs, and wall-clock-derived
//!    fields must not appear in the body at all.
//! 2. **File-based** — when the committed `BENCH_fig8.json` is present
//!    at the repo root, parse it, validate the schema, and pin the
//!    Fig. 8 speed ordering: the superblock trace tier at least as fast
//!    as the uop-cache tier, which beats the plain decode-and-execute
//!    interpreter. (Skipped with a note when the file has not been
//!    generated; `scripts/bench.sh` writes it.)

use minjie_bench::fig8;
use workloads::Scale;

/// Small fuel keeps the deterministic tier fast; the committed report
/// uses the default 2e8 budget via scripts/bench.sh.
const SMOKE_FUEL: u64 = 300_000;

/// Per-workload cycle-model cap for the smoke tier (the committed
/// report uses the default 2e6 via scripts/bench.sh).
const SMOKE_CYCLES: u64 = 50_000;

fn smoke_report() -> serde::Value {
    let ps = fig8::measure_personalities(Scale::Test, SMOKE_FUEL);
    let campaign = fig8::measure_campaign("nemu-trace", 4, 1_000_000);
    let cm = fig8::measure_cycle_model(Scale::Test, SMOKE_CYCLES);
    fig8::build_report("spec-like-suite@Test", SMOKE_FUEL, &ps, &campaign, &cm, 1.0)
}

#[test]
fn emitted_report_is_schema_clean() {
    let report = smoke_report();
    fig8::validate(&report).expect("fig8 report failed its own schema");
    // The rates exist, but only under timing.
    for p in nemu::registry::names() {
        let m = fig8::mips_of(&report, p).expect("every personality has a rate");
        assert!(m.is_finite() && m > 0.0, "{p}: bad rate {m}");
    }
    for preset in fig8::CYCLE_PRESETS {
        let k = fig8::kilocycles_per_sec_of(&report, preset)
            .expect("every cycle-model preset has a rate");
        assert!(k.is_finite() && k > 0.0, "{preset}: bad rate {k}");
        let cpi = fig8::cpi_milli_of(&report, preset).expect("suite CPI");
        assert!(cpi > 0, "{preset}: zero CPI");
    }
}

#[test]
fn report_body_is_deterministic_and_wall_clock_free() {
    let a = smoke_report();
    let b = smoke_report();
    let body_a = fig8::body_json(&a);
    assert_eq!(
        body_a,
        fig8::body_json(&b),
        "report body differs between identical runs"
    );
    for leak in ["mips", "_ms", "per_sec", "elapsed"] {
        assert!(
            !body_a.contains(leak),
            "wall-clock field {leak:?} leaked into the deterministic body"
        );
    }
    // Every personality retired the identical instruction total — the
    // suites are the same programs, so any difference is an engine bug.
    let ps = a.get_or_null("personalities");
    let counts: Vec<u64> = nemu::registry::names()
        .iter()
        .map(|n| {
            ps.get_or_null(n)
                .get_or_null("instructions")
                .as_u64()
                .expect("instructions")
        })
        .collect();
    assert!(
        counts.windows(2).all(|w| w[0] == w[1]),
        "personalities disagree on retired instructions: {counts:?}"
    );
}

#[test]
fn committed_report_pins_speed_ordering() {
    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/BENCH_fig8.json");
    let Ok(text) = std::fs::read_to_string(path) else {
        eprintln!("note: {path} not generated (run scripts/bench.sh); skipping file pin");
        return;
    };
    let report: serde::Value = serde_json::from_str(&text).expect("BENCH_fig8.json parses");
    fig8::validate(&report).expect("committed BENCH_fig8.json failed schema");
    let trace = fig8::mips_of(&report, "nemu-trace").expect("nemu-trace rate");
    let fast = fig8::mips_of(&report, "nemu").expect("nemu rate");
    let interp = fig8::mips_of(&report, "dromajo-like").expect("dromajo-like rate");
    assert!(
        trace >= fast,
        "trace tier regressed below the uop-cache tier: {trace:.1} < {fast:.1} MIPS"
    );
    assert!(
        fast >= interp,
        "uop-cache tier regressed below plain interp: {fast:.1} < {interp:.1} MIPS"
    );
    // The paper's headline gap (Fig. 8): the memoizing tiers are
    // multiples of the plain interpreter, not percent-level wins.
    assert!(
        trace >= 2.0 * interp,
        "trace tier no longer clears 2x plain interp: {trace:.1} vs {interp:.1} MIPS"
    );
    // Cycle-model pins: both tracked presets report a sane suite CPI
    // (an OoO multi-issue core on these kernels sits well inside
    // 0.2..50 CPI) and a positive simulation rate. The exact CPI is a
    // deterministic body field, so any change shows up in the diff of
    // the committed file rather than here.
    for preset in fig8::CYCLE_PRESETS {
        let cpi = fig8::cpi_milli_of(&report, preset)
            .unwrap_or_else(|| panic!("{preset}: missing cycle-model entry"));
        assert!(
            (200..50_000).contains(&cpi),
            "{preset}: suite CPI {cpi} milli-units is implausible"
        );
        let k = fig8::kilocycles_per_sec_of(&report, preset).expect("rate");
        assert!(k > 0.0, "{preset}: bad sim rate {k}");
        // The checkpoint-farm accuracy tier: the SimPoint-weighted CPI
        // estimate must be plausible and inside the per-mille error
        // gate against the full simulation (validate() enforces the
        // gate; the plausibility band catches a broken estimate that
        // happens to sit near a broken baseline).
        let sampled = fig8::sampled_cpi_milli_of(&report, preset)
            .unwrap_or_else(|| panic!("{preset}: missing sampled_cpi_milli"));
        assert!(
            (200..50_000).contains(&sampled),
            "{preset}: sampled CPI {sampled} milli-units is implausible"
        );
        let err = fig8::sampled_cpi_err_milli_of(&report, preset).expect("sampled error");
        assert!(
            err <= fig8::SAMPLED_ERR_BOUND_MILLI,
            "{preset}: sampled CPI error {err} per mille exceeds the gate"
        );
    }
}
