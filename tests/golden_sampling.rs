//! Golden pins for the checkpoint farm (`campaign::run_sampled`,
//! paper §III-D3).
//!
//! Three tiers:
//!
//! 1. **Pinned accuracy** — the SimPoint-weighted CPI estimate for every
//!    workload × preset cell is pinned to the exact milli-unit. The
//!    whole pipeline (BBV profiling, k-means++ with the fixed
//!    `CLUSTER_SEED`, checkpoint materialization, warm-up + window
//!    simulation, weighted aggregation) is deterministic, so any change
//!    anywhere in it moves these integers and must re-pin consciously.
//! 2. **Error bound** — the same estimates are compared against the
//!    *full* cycle-model run of each workload: the estimate must land
//!    within 25 % of the measured CPI (the paper's Fig. 12 accuracy
//!    claim, held as a hard gate rather than a plot).
//! 3. **Determinism** — the `sampling` section of the deterministic
//!    report body is byte-identical across runs even when the worker
//!    count (and therefore job interleaving) changes, and contains no
//!    floating-point rendering at all: weights and CPIs are exact
//!    integer milli-units.

use campaign::{run_sampled, SampleSpec};
use workloads::Scale;
use xscore::XsConfig;

const WORKLOADS: [&str; 3] = ["sjeng", "hmmer", "libquantum"];
const CONFIGS: [&str; 2] = ["small-nh", "small-yqh"];

/// The farm under test: 8 k-instruction intervals, up to 6 SimPoints
/// per workload, fanned over 2 workers. The 2 k warm-up / 24 k window
/// pair is deliberate: on these test-scale kernels, short windows are
/// dominated by the cold-restore transient (libquantum overestimates by
/// >30 %), while long warm-ups shift hmmer's windows off the profiled
/// intervals — this pair holds every cell within the 25 % gate.
fn farm_spec() -> SampleSpec {
    SampleSpec::new(
        WORKLOADS.iter().map(|s| s.to_string()).collect(),
        CONFIGS.iter().map(|s| s.to_string()).collect(),
    )
    .with_interval(8_000)
    .with_max_checkpoints(6)
    .with_warmup(2_000)
    .with_window(24_000)
    .with_workers(2)
}

/// Exact weighted-CPI pins, milli-units: (config, workload, cpi_milli).
/// Re-pin deliberately (run with `--nocapture`; the test prints the
/// actual table) when the cycle model or the sampling pipeline changes.
const PINNED: &[(&str, &str, u64)] = &[
    ("small-nh", "sjeng", 864),
    ("small-nh", "hmmer", 314),
    ("small-nh", "libquantum", 722),
    ("small-yqh", "sjeng", 888),
    ("small-yqh", "hmmer", 315),
    ("small-yqh", "libquantum", 691),
];

/// CPI of the full (non-sampled) cycle-model run, milli-units.
fn full_cpi_milli(workload: &str, config: &str) -> u64 {
    let program = workloads::workload(workload, Scale::Test).program;
    let cfg = XsConfig::preset(config).expect("known preset");
    let stats = minjie::run_isolated(cfg, &program, 100_000_000, None).expect("full run");
    assert!(
        matches!(stats.end, minjie::CoSimEnd::Halted(_)),
        "{workload}/{config}: full run did not halt: {:?}",
        stats.end
    );
    stats.cycles * 1000 / stats.instret.max(1)
}

#[test]
fn weighted_cpi_is_pinned_and_tracks_full_run() {
    let report = run_sampled(&farm_spec());
    assert_eq!(
        report.sampling.len(),
        WORKLOADS.len() * CONFIGS.len(),
        "one sampling summary per workload x config cell"
    );
    // Print the actual table so re-pinning is a copy-paste.
    for sm in &report.sampling {
        println!(
            "    (\"{}\", \"{}\", {}),",
            sm.config,
            sm.workload.trim_start_matches("kernel:"),
            sm.weighted_cpi_milli
        );
    }
    for sm in &report.sampling {
        let workload = sm.workload.trim_start_matches("kernel:");
        assert!(
            sm.aggregated >= 2,
            "{workload}/{}: only {} of {} checkpoints aggregated",
            sm.config,
            sm.aggregated,
            sm.checkpoints
        );
        // (aggregated may trail checkpoints: a checkpoint whose interval
        // abuts program end can halt before filling its window, which
        // drops it from the estimate by design.)
        let (_, _, pin) = PINNED
            .iter()
            .find(|(c, w, _)| *c == sm.config && *w == workload)
            .unwrap_or_else(|| panic!("no pin for {workload}/{}", sm.config));
        assert_eq!(
            sm.weighted_cpi_milli, *pin,
            "{workload}/{}: weighted CPI moved from its pin — re-pin deliberately",
            sm.config
        );
        // The accuracy gate: estimate within 25 % of the full run.
        let full = full_cpi_milli(workload, &sm.config);
        let err_pct = sm.weighted_cpi_milli.abs_diff(full) * 100 / full.max(1);
        assert!(
            err_pct <= 25,
            "{workload}/{}: sampled {} vs full {} milli-CPI is {err_pct}% off",
            sm.config,
            sm.weighted_cpi_milli,
            full
        );
    }
}

/// The `sampling` body section must not depend on worker interleaving:
/// one worker vs. three produce byte-identical sections, and the
/// serialized section (weights, CPIs, per-phase stacks) is pure-integer
/// — no '.' anywhere, so no float rounding can ever skew an estimate.
#[test]
fn sampling_section_is_byte_identical_and_float_free() {
    let base = SampleSpec::new(vec!["sjeng".into()], vec!["small-nh".into()])
        .with_interval(8_000)
        .with_max_checkpoints(3);
    let a = run_sampled(&base.clone().with_workers(1));
    let b = run_sampled(&base.with_workers(3));

    let section = |r: &campaign::CampaignReport| {
        let body: serde::Value =
            serde_json::from_str(&r.deterministic_json()).expect("body parses");
        serde_json::to_string(body.get("sampling").expect("sampling section present"))
            .expect("section serializes")
    };
    let sa = section(&a);
    assert_eq!(sa, section(&b), "sampling body depends on worker count");
    assert!(
        !sa.contains('.'),
        "float leaked into the sampling section: {sa}"
    );
    // The per-job sample records are integer-only too.
    for j in &a.jobs {
        let s = serde_json::to_string(j.sample.as_ref().expect("sample record")).unwrap();
        assert!(!s.contains('.'), "float leaked into a sample record: {s}");
    }
}
