//! Cross-crate integration: DiffTest over the full workload suite and
//! torture-generated programs (DUT = xscore cycle model, REF = NEMU).
//!
//! The matrices run through the campaign runner (`crates/campaign`), so
//! the same sharding, panic isolation, and report plumbing the
//! verification campaigns use is exercised on every tier-1 run. Only
//! `fault_injection_is_always_caught` still drives `CoSim` directly —
//! it mutates architectural state mid-run, which is not a thing a
//! declarative job spec can describe.

use campaign::{Campaign, CampaignReport, JobSpec, Verdict, WorkloadSource};
use minjie::{CoSim, CoSimEnd};
use workloads::{Scale, TortureConfig};
use xscore::XsConfig;

/// Run `jobs` on the default worker pool and require a clean sweep.
fn run_all_halted(jobs: Vec<JobSpec>) -> CampaignReport {
    let report = Campaign::new(jobs).with_workers(4).run();
    assert_eq!(
        report.summary.halted,
        report.summary.total,
        "campaign had non-halting jobs: {}",
        report.deterministic_json()
    );
    report
}

#[test]
fn every_workload_passes_difftest_on_nh() {
    let jobs = workloads::NAMES
        .iter()
        .map(|name| {
            JobSpec::new(WorkloadSource::kernel(*name), "small-nh").with_max_cycles(80_000_000)
        })
        .collect();
    let report = run_all_halted(jobs);
    for j in &report.jobs {
        assert!(
            j.commits_checked > 3_000,
            "{} checked too few commits ({})",
            j.workload,
            j.commits_checked
        );
        assert!(j.ipc > 0.0, "{} reported no IPC", j.workload);
    }
}

#[test]
fn every_workload_passes_difftest_on_yqh() {
    let jobs = workloads::NAMES
        .iter()
        .map(|name| {
            JobSpec::new(WorkloadSource::kernel(*name), "small-yqh").with_max_cycles(80_000_000)
        })
        .collect();
    run_all_halted(jobs);
}

#[test]
fn torture_programs_pass_difftest() {
    let cfg = TortureConfig::default();
    let jobs = (0..12)
        .map(|seed| JobSpec::new(WorkloadSource::torture(seed, cfg), "small-nh"))
        .collect();
    run_all_halted(jobs);
}

#[test]
fn torture_without_branches_or_memory() {
    let cfg = TortureConfig {
        memory_ops: false,
        branches: false,
        muldiv: true,
        body_len: 80,
        iterations: 30,
        compressed: false,
    };
    let jobs = (100..106)
        .map(|seed| JobSpec::new(WorkloadSource::torture(seed, cfg), "small-nh"))
        .collect();
    run_all_halted(jobs);
}

#[test]
fn torture_with_compressed_instructions_passes_difftest() {
    // Mixed 2/4-byte encodings misalign instructions across 32-byte fetch
    // blocks, exercising the IFU's split-fetch path.
    let cfg = TortureConfig {
        compressed: true,
        ..Default::default()
    };
    let jobs = (200..210)
        .map(|seed| JobSpec::new(WorkloadSource::torture(seed, cfg), "small-nh"))
        .collect();
    run_all_halted(jobs);
}

#[test]
fn fault_injection_is_always_caught() {
    // Corrupting any architectural register mid-run must produce a
    // DiffTest report, never a silent pass (on this branch-heavy kernel
    // every register feeds the outputs).
    let w = workloads::workload("sjeng", Scale::Test);
    let cfg = || XsConfig::preset("small-nh").expect("preset exists");
    for (reg, when) in [(10u8, 5_000u64), (18, 9_000), (8, 14_000)] {
        let mut cosim = CoSim::new(cfg(), &w.program).with_lightsss(2_000);
        let mut armed = true;
        let mut caught = false;
        for _ in 0..40_000_000u64 {
            if cosim.state.sys.all_halted() {
                break;
            }
            if armed && cosim.state.sys.cores[0].instret() >= when {
                cosim.state.sys.cores[0].inject_fault_gpr(reg, 1 << 13);
                armed = false;
            }
            if cosim.step_cycle().is_err() {
                caught = true;
                break;
            }
        }
        assert!(caught, "fault in x{reg} at {when} must be detected");
    }
}

#[test]
fn verdicts_carry_the_halt_exit_code() {
    // The campaign records the same exit codes a direct run reports.
    let w = workloads::workload("mcf", Scale::Test);
    let direct = match CoSim::new(XsConfig::preset("small-nh").unwrap(), &w.program).run(80_000_000)
    {
        CoSimEnd::Halted(code) => code,
        other => panic!("{other:?}"),
    };
    let report = run_all_halted(vec![JobSpec::new(
        WorkloadSource::kernel("mcf"),
        "small-nh",
    )
    .with_max_cycles(80_000_000)]);
    match &report.jobs[0].verdict {
        Verdict::Halted { exit_code } => assert_eq!(*exit_code, direct),
        other => panic!("{other:?}"),
    }
}
