//! Cross-crate integration: DiffTest over the full workload suite and
//! torture-generated programs (DUT = xscore cycle model, REF = NEMU).

use minjie::{CoSim, CoSimEnd};
use workloads::{all_workloads, random_program, Scale, TortureConfig};
use xscore::XsConfig;

fn small_nh() -> XsConfig {
    let mut c = XsConfig::nh();
    c.l1i = uncore::CacheConfig::new("l1i", 8192, 2, 2, 4);
    c.l1d = uncore::CacheConfig::new("l1d", 8192, 2, 4, 8);
    c.l2 = uncore::CacheConfig::new("l2", 32768, 4, 10, 8);
    c.l3 = Some(uncore::CacheConfig::new("l3", 131072, 4, 20, 16));
    c.memory = xscore::MemoryModel::FixedAmat(40);
    c
}

#[test]
fn every_workload_passes_difftest_on_nh() {
    for w in all_workloads(Scale::Test) {
        let mut cosim = CoSim::new(small_nh(), &w.program);
        match cosim.run(80_000_000) {
            CoSimEnd::Halted(_) => {}
            other => panic!("{}: {other:?}", w.name),
        }
        assert!(
            cosim.state.diff.commits_checked > 3_000,
            "{} checked too few commits",
            w.name
        );
    }
}

#[test]
fn every_workload_passes_difftest_on_yqh() {
    let mut cfg = XsConfig::yqh();
    cfg.memory = xscore::MemoryModel::FixedAmat(60);
    for w in all_workloads(Scale::Test) {
        let mut cosim = CoSim::new(cfg.clone(), &w.program);
        match cosim.run(80_000_000) {
            CoSimEnd::Halted(_) => {}
            other => panic!("{}: {other:?}", w.name),
        }
    }
}

#[test]
fn torture_programs_pass_difftest() {
    let cfg = TortureConfig::default();
    for seed in 0..12 {
        let p = random_program(seed, &cfg);
        let mut cosim = CoSim::new(small_nh(), &p);
        match cosim.run(40_000_000) {
            CoSimEnd::Halted(_) => {}
            other => panic!("seed {seed}: {other:?}"),
        }
    }
}

#[test]
fn torture_without_branches_or_memory() {
    let cfg = TortureConfig {
        memory_ops: false,
        branches: false,
        muldiv: true,
        body_len: 80,
        iterations: 30,
        compressed: false,
    };
    for seed in 100..106 {
        let p = random_program(seed, &cfg);
        let mut cosim = CoSim::new(small_nh(), &p);
        assert!(
            matches!(cosim.run(40_000_000), CoSimEnd::Halted(_)),
            "seed {seed}"
        );
    }
}

#[test]
fn torture_with_compressed_instructions_passes_difftest() {
    // Mixed 2/4-byte encodings misalign instructions across 32-byte fetch
    // blocks, exercising the IFU's split-fetch path.
    let cfg = TortureConfig {
        compressed: true,
        ..Default::default()
    };
    for seed in 200..210 {
        let p = random_program(seed, &cfg);
        let mut cosim = CoSim::new(small_nh(), &p);
        match cosim.run(40_000_000) {
            CoSimEnd::Halted(_) => {}
            other => panic!("seed {seed}: {other:?}"),
        }
    }
}

#[test]
fn fault_injection_is_always_caught() {
    // Corrupting any architectural register mid-run must produce a
    // DiffTest report, never a silent pass (on this branch-heavy kernel
    // every register feeds the outputs).
    let w = workloads::workload("sjeng", Scale::Test);
    for (reg, when) in [(10u8, 5_000u64), (18, 9_000), (8, 14_000)] {
        let mut cosim = CoSim::new(small_nh(), &w.program).with_lightsss(2_000);
        let mut armed = true;
        let mut caught = false;
        for _ in 0..40_000_000u64 {
            if cosim.state.sys.all_halted() {
                break;
            }
            if armed && cosim.state.sys.cores[0].instret() >= when {
                cosim.state.sys.cores[0].inject_fault_gpr(reg, 1 << 13);
                armed = false;
            }
            if cosim.step_cycle().is_err() {
                caught = true;
                break;
            }
        }
        assert!(caught, "fault in x{reg} at {when} must be detected");
    }
}
