//! Golden pins for the multi-hart litmus tier.
//!
//! Fixed-seed litmus programs on a dual-core `small-nh` must (a) halt
//! divergence-free with every outcome in the shape's allowed set, (b)
//! reproduce their exact observed-outcome histogram across reruns (the
//! cycle model is deterministic), and (c) with the §IV-C L2 probe/grant
//! race injected, raise a `ForbiddenOutcome` that replays at the same
//! commit index. A changed histogram means the timing model shifted —
//! justify the delta, don't loosen the pin.

use campaign::{verify_bundle, Campaign, JobSpec, Verdict, WorkloadSource};
use minjie::{CoSim, CoSimEnd};
use workloads::litmus::{status, LitmusConfig, LitmusExit, LitmusShape};
use workloads::random_litmus;
use xscore::XsConfig;

fn dual_small_nh() -> XsConfig {
    let mut c = XsConfig::preset("small-nh").expect("preset exists");
    c.cores = 2;
    c
}

fn run_litmus(seed: u64, cfg: &LitmusConfig) -> LitmusExit {
    let p = random_litmus(seed, cfg);
    let mut cosim = CoSim::new(dual_small_nh(), &p);
    match cosim.run(6_000_000) {
        CoSimEnd::Halted(code) => LitmusExit::decode(code),
        other => panic!("litmus {:?} seed {seed}: {other:?}", cfg.shape),
    }
}

#[test]
fn every_shape_halts_clean_on_dual_core() {
    for shape in LitmusShape::ALL {
        for fenced in [false, true] {
            let cfg = LitmusConfig {
                shape,
                fenced,
                rounds: 4,
                ..LitmusConfig::default()
            };
            let exit = run_litmus(1, &cfg);
            assert_eq!(
                exit.status,
                status::OK,
                "{shape:?} fenced={fenced}: {exit:?} (outcome {})",
                LitmusExit::describe_outcome(exit.first_bad_outcome)
            );
        }
    }
}

#[test]
fn lrsc_contention_many_seeds() {
    for seed in 0..20u64 {
        let cfg = LitmusConfig {
            shape: LitmusShape::LrScContention,
            rounds: 6,
            ..LitmusConfig::default()
        };
        let exit = run_litmus(seed, &cfg);
        assert_eq!(exit.status, status::OK, "seed {seed}: {exit:?}");
    }
}

/// Round-0 outcome histogram over seeds 0..8 for every shape × fence,
/// pinned to the exact values the deterministic dual-core model
/// produces today. The outcome index packs the two observed digits as
/// `d0 << 2 | d1`.
#[test]
fn outcome_histograms_are_pinned() {
    // (shape, fenced, [(outcome index, count)])
    let pins: &[(LitmusShape, bool, &[(u8, u32)])] = &[
        (LitmusShape::Mp, false, &[(1, 8)]),
        (LitmusShape::Mp, true, &[(0, 8)]),
        (LitmusShape::Sb, false, &[(0, 8)]),
        (LitmusShape::Sb, true, &[(5, 8)]),
        (LitmusShape::Lb, false, &[(0, 8)]),
        (LitmusShape::Lb, true, &[(0, 8)]),
        (LitmusShape::CoRR, false, &[(0, 8)]),
        (LitmusShape::CoRR, true, &[(0, 8)]),
        (LitmusShape::CoWW, false, &[(0, 8)]),
        (LitmusShape::CoWW, true, &[(0, 8)]),
        (LitmusShape::TwoPlusTwoW, false, &[(9, 8)]),
        (LitmusShape::TwoPlusTwoW, true, &[(9, 8)]),
        (LitmusShape::LrScContention, false, &[(0, 8)]),
        (LitmusShape::LrScContention, true, &[(0, 8)]),
        (LitmusShape::FenceTorture, false, &[(0, 4), (1, 4)]),
        (LitmusShape::FenceTorture, true, &[(0, 4), (1, 4)]),
    ];
    for &(shape, fenced, expected) in pins {
        let mut hist = [0u32; 16];
        for seed in 0..8u64 {
            let cfg = LitmusConfig {
                shape,
                fenced,
                rounds: 4,
                ..LitmusConfig::default()
            };
            let exit = run_litmus(seed, &cfg);
            assert_eq!(exit.status, status::OK, "{shape:?} fenced={fenced} seed={seed}");
            hist[(exit.round0_outcome & 0xf) as usize] += 1;
        }
        let got: Vec<(u8, u32)> = hist
            .iter()
            .enumerate()
            .filter(|(_, &n)| n > 0)
            .map(|(i, &n)| (i as u8, n))
            .collect();
        assert_eq!(got, expected, "{shape:?} fenced={fenced} histogram moved");
    }
}

/// The same seed must reproduce the identical packed exit word —
/// status, round-0 outcome, and first-bad fields — across reruns.
#[test]
fn reruns_are_byte_identical() {
    for shape in [LitmusShape::Mp, LitmusShape::Sb, LitmusShape::FenceTorture] {
        let cfg = LitmusConfig {
            shape,
            rounds: 4,
            ..LitmusConfig::default()
        };
        let a = run_litmus(7, &cfg);
        let b = run_litmus(7, &cfg);
        assert_eq!(a, b, "{shape:?}: rerun drifted");
    }
}

/// §IV-C probe/grant race pin: with the fault injected into L2 bank 0,
/// a fenced SB program commits a forbidden (0,0) observation — the
/// injected corruption makes hart 1 miss hart 0's store while both
/// fences are in place. The campaign must classify it as
/// `ForbiddenOutcome`, triage it into a bundle, and the bundle must
/// re-execute to the same exit word at the identical commit index.
#[test]
fn l2_race_forbidden_outcome_replays_at_same_commit() {
    let cfg = LitmusConfig {
        shape: LitmusShape::Sb,
        fenced: true,
        rounds: 4,
        ..LitmusConfig::default()
    };
    let spec = JobSpec::new(WorkloadSource::litmus(0, cfg), "small-nh")
        .with_cores(2)
        .with_l2_race()
        .with_max_cycles(400_000);
    let report = Campaign::new(vec![spec])
        .with_workers(1)
        .with_minimization(true)
        .with_triage(true)
        .run();
    assert_eq!(report.summary.forbidden, 1, "fault not caught: {:?}", report.jobs[0].verdict);
    let job = &report.jobs[0];
    let Verdict::ForbiddenOutcome { round, outcome, exit_code, .. } = &job.verdict else {
        panic!("expected ForbiddenOutcome, got {:?}", job.verdict);
    };
    let exit = LitmusExit::decode(*exit_code);
    assert_eq!(exit.status, status::FORBIDDEN);
    assert_eq!(u64::from(exit.first_bad_round), *round);
    assert_eq!(u64::from(exit.first_bad_outcome), *outcome);
    // A minimized reproducer exists and still triggers on a subset.
    let m = job.minimized.as_ref().expect("minimized repro");
    assert_eq!(m.error_class, "ForbiddenOutcome");
    assert!(m.litmus.is_some() && m.torture.is_none());
    assert!(m.minimized_kept <= m.original_kept);
    // The triage bundle replays from reset to the identical commit.
    let bundle = job.triage.as_ref().expect("triage bundle");
    assert_eq!(bundle.trigger, "forbidden-outcome");
    assert!(bundle.reproduced, "in-process triage replay failed");
    let v = verify_bundle(bundle).expect("bundle verifies");
    assert!(v.reproduced, "bundle re-execution drifted: {}", v.detail);
    assert_eq!(v.at_commit, bundle.at_commit);
}
