//! End-to-end reproductions of the paper's diff-rule scenarios:
//!
//! - Fig. 3: the speculative-TLB page fault (a PTE store lingering in the
//!   store buffer makes the DUT fault where the REF does not),
//! - §III-B2c: micro-architectural SC failures,
//! - §IV-C: the injected L2 Probe/GrantData race on a dual-core system,
//!   caught by the global-memory rule and debugged through LightSSS.
//!
//! The declarative scenarios (Fig. 3, the dual-core counter, the clean
//! reader/writer) run as inline-program campaign jobs, asserting rule
//! firings and exception counts through the campaign's job records. The
//! SC-failure and injected-L2-race scenarios keep driving `CoSim`
//! directly: both mutate the DUT after construction (`force_sc_fail`,
//! `inject_l2_race_bug`), which a job spec deliberately cannot express.

use campaign::{Campaign, JobRecord, JobSpec, Verdict, WorkloadSource};
use minjie::{CoSim, CoSimEnd, DiffRule};
use riscv_isa::asm::{reg::*, Asm, Program};
use riscv_isa::csr::addr as csr;
use xscore::XsConfig;

fn small_nh(cores: usize) -> XsConfig {
    let mut c = XsConfig::preset("small-nh").expect("preset exists");
    c.cores = cores;
    c
}

/// Run one inline program on `small-nh` through the campaign and return
/// its record, requiring the given exit code.
fn run_scenario(name: &str, program: Program, cores: usize, expect_exit: u64) -> JobRecord {
    let spec = JobSpec::new(WorkloadSource::inline(name, program), "small-nh")
        .with_cores(cores)
        .with_max_cycles(8_000_000);
    let report = Campaign::new(vec![spec]).with_workers(1).run();
    let record = report.jobs.into_iter().next().expect("one record");
    match &record.verdict {
        Verdict::Halted { exit_code } => assert_eq!(*exit_code, expect_exit, "{name}"),
        other => panic!("{name}: {other:?}"),
    }
    record
}

/// Count a rule in a job record's sorted `(name, count)` list.
fn rule_count(record: &JobRecord, rule: DiffRule) -> u64 {
    record
        .rule_counts
        .iter()
        .find(|(n, _)| n == rule.name())
        .map(|(_, c)| *c)
        .unwrap_or(0)
}

/// The Fig. 3 program: an S-mode PTE store immediately followed by a load
/// through the page it maps. On the DUT the store sits in the store
/// buffer while the PTW walks stale memory — a page fault the REF never
/// takes.
fn fig3_program() -> Program {
    let mut a = Asm::new(0x8000_0000);
    let handler = a.label();
    let s_entry = a.label();
    let root: i64 = 0x8100_0000;
    // Identity 1 GiB superpage for the 0x8000_0000 region (code + tables).
    a.li(T0, root);
    a.li(T1, ((0x8000_0000u64 >> 12) << 10) as i64 | 0xcf); // V R W X A D
    a.sd(T1, 16, T0); // PTE[vpn2=2]
    a.sd(ZERO, 8, T0); // PTE[vpn2=1] — target page, initially INVALID
    a.fence(); // drain the setup stores before enabling translation
    a.la(T2, handler);
    a.csrrw(ZERO, csr::MTVEC, T2);
    a.li(T3, (8i64 << 60) | (root >> 12));
    a.csrrw(ZERO, csr::SATP, T3);
    a.li(GP, 0); // page-fault counter
    // Registers for the S-mode body.
    a.li(S0, root + 8); // &PTE[1]
    a.li(S1, ((0x4000_0000u64 >> 12) << 10) as i64 | 0xcf); // valid leaf
    a.li(S2, 0x4000_0000); // target VA
    a.la(T4, s_entry);
    a.csrrw(ZERO, csr::MEPC, T4);
    a.li(T5, (1 << 11) | (3 << 13)); // MPP = S, FS on
    a.csrrw(ZERO, csr::MSTATUS, T5);
    a.mret();
    // ---- S-mode ----
    a.bind(s_entry);
    a.sd(S1, 0, S0); // the PTE store (lingers in the DUT's store buffer)
    a.ld(A1, 0, S2); // speculative-TLB page fault on the DUT
    a.mv(A0, GP); // exit code = observed faults
    a.ebreak();
    // ---- M-mode trap handler ----
    a.bind(handler);
    a.addi(GP, GP, 1);
    a.sfence_vma(ZERO, ZERO);
    // Let the store buffer drain before retrying.
    a.li(T6, 40);
    let spin = a.bound_label();
    a.addi(T6, T6, -1);
    a.bnez(T6, spin);
    a.mret(); // mepc still points at the faulting load: retry
    a.assemble()
}

#[test]
fn fig3_speculative_page_fault_rule() {
    // Exit code 1: exactly one page fault observed by the program.
    let record = run_scenario("fig3-spec-pf", fig3_program(), 1, 1);
    assert_eq!(
        rule_count(&record, DiffRule::SpeculativePageFault),
        1,
        "the DUT-only fault must be reconciled by the rule: {:?}",
        record.rule_counts
    );
    // The DUT really took the fault for the micro-architectural reason:
    // its PTW walked memory while the PTE store sat in the store buffer.
    assert!(record.exceptions >= 1);
}

#[test]
fn fig3_program_is_fault_free_on_the_ref_alone() {
    // Sanity: NEMU alone (no store buffer) never faults on this program.
    use nemu::Interpreter;
    let mut n = nemu::Nemu::new(&fig3_program());
    let r = n.run(10_000_000);
    assert_eq!(r.exit_code, Some(0), "REF sees no page fault");
}

#[test]
fn sc_failure_rule_reconciles_forced_timeout() {
    // LR/SC retry loop; the DUT's first SC is forced to fail (modeling a
    // reservation timeout). The rule notifies the REF; the program's
    // retry loop converges on both.
    let mut a = Asm::new(0x8000_0000);
    a.li(T0, 0x8002_0000);
    a.li(T2, 7);
    let retry = a.bound_label();
    a.lr_d(T1, T0);
    a.add(T1, T1, T2);
    a.sc_d(T3, T1, T0);
    a.bnez(T3, retry);
    a.ld(A0, 0, T0); // 7
    a.ebreak();
    let p = a.assemble();
    let mut cosim = CoSim::new(small_nh(1), &p);
    cosim.state.sys.cores[0].force_sc_fail = true;
    match cosim.run(2_000_000) {
        CoSimEnd::Halted(code) => assert_eq!(code, 7),
        other => panic!("{other:?}"),
    }
    assert_eq!(cosim.state.diff.stats.count(DiffRule::ScFailure), 1);
    assert_eq!(cosim.state.sys.cores[0].perf.sc_failures, 1);
}

/// Dual-core shared-counter program (amoadd from both harts, then hart 0
/// reads the total after hart 1 raises a done flag).
fn dual_core_program(rounds: i64) -> Program {
    let counter = 0x8002_0000i64;
    let done_flag = 0x8002_0100i64;
    let mut a = Asm::new(0x8000_0000);
    let hart1 = a.label();
    let finish = a.label();
    a.csrrs(T0, csr::MHARTID, ZERO);
    a.bnez(T0, hart1);
    // hart 0
    a.li(T1, counter);
    a.li(T2, 1);
    a.li(S0, rounds);
    let l0 = a.bound_label();
    a.amoadd_d(ZERO, T2, T1);
    a.addi(S0, S0, -1);
    a.bnez(S0, l0);
    a.li(T3, done_flag);
    let wait = a.bound_label();
    a.ld(T4, 0, T3);
    a.beqz(T4, wait);
    a.j(finish);
    // hart 1
    a.bind(hart1);
    a.li(T1, counter);
    a.li(T2, 2);
    a.li(S0, rounds);
    let l1 = a.bound_label();
    a.amoadd_d(ZERO, T2, T1);
    a.addi(S0, S0, -1);
    a.bnez(S0, l1);
    a.li(T3, done_flag);
    a.li(T4, 1);
    a.sd(T4, 0, T3);
    a.li(A0, 0);
    a.ebreak();
    a.bind(finish);
    a.li(T1, counter);
    a.ld(A0, 0, T1);
    a.ebreak();
    a.assemble()
}

#[test]
fn dual_core_difftest_with_global_memory_rule() {
    let rounds = 25;
    // Exit code: all increments visible (rounds × (1 + 2)).
    let record = run_scenario(
        "dual-core-counter",
        dual_core_program(rounds),
        2,
        (rounds * 3) as u64,
    );
    // The interleaved AMOs force the rule: each hart's single-core REF
    // cannot know the other's increments.
    assert!(
        rule_count(&record, DiffRule::GlobalMemoryLoad) > 0,
        "global-memory rule must have been exercised: {:?}",
        record.rule_counts
    );
}

/// Reader/writer program: hart 1 increments the shared counter with
/// AMOs; hart 0 polls it (holding a read-only copy that the coherence
/// protocol must keep invalidating) until the done flag rises.
fn reader_writer_program(rounds: i64) -> Program {
    let counter = 0x8002_0000i64;
    let done_flag = 0x8002_0100i64;
    let mut a = Asm::new(0x8000_0000);
    let hart1 = a.label();
    a.csrrs(T0, csr::MHARTID, ZERO);
    a.bnez(T0, hart1);
    // hart 0: poll the counter until done.
    a.li(T1, counter);
    a.li(T3, done_flag);
    let poll = a.bound_label();
    a.ld(T4, 0, T1); // the load whose staleness betrays the bug
    a.ld(T5, 0, T3);
    a.beqz(T5, poll);
    a.ld(A0, 0, T1);
    a.ebreak();
    // hart 1: increment, then raise the flag.
    a.bind(hart1);
    a.li(T1, counter);
    a.li(T2, 2);
    a.li(S0, rounds);
    let l1 = a.bound_label();
    a.amoadd_d(ZERO, T2, T1);
    a.addi(S0, S0, -1);
    a.bnez(S0, l1);
    a.li(T3, done_flag);
    a.li(T4, 1);
    a.sd(T4, 0, T3);
    a.li(A0, 0);
    a.ebreak();
    a.assemble()
}

#[test]
fn dual_core_reader_writer_is_clean_without_bug() {
    let rounds = 30;
    run_scenario(
        "reader-writer-clean",
        reader_writer_program(rounds),
        2,
        (rounds * 2) as u64,
    );
}

#[test]
fn dual_core_l2_race_bug_is_caught_and_replayed() {
    // The §IV-C case study: inject the Probe/GrantData overlap bug into
    // core 0's L2 and run the reader/writer workload under full
    // co-simulation with LightSSS. The buggy L2 keeps hart 0's read-only
    // copy alive through an invalidating probe, so hart 0 reads values
    // that are neither its REF's nor (after the history window) the
    // Global Memory's — the paper's "data mismatch" detection.
    let mut caught = None;
    for attempt in 0..3u64 {
        let rounds = 60 + attempt as i64 * 30;
        let mut cosim =
            CoSim::new(small_nh(2), &reader_writer_program(rounds)).with_lightsss(5_000);
        cosim.state.sys.mem.inject_l2_race_bug(0);
        match cosim.run(10_000_000) {
            CoSimEnd::Bug(report) => {
                caught = Some(report);
                break;
            }
            CoSimEnd::Halted(code) => {
                if code as i64 != rounds * 2 {
                    panic!("lost update escaped DiffTest: count {code}");
                }
            }
            CoSimEnd::OutOfCycles => panic!("did not converge"),
        }
    }
    let report = caught.expect("the injected L2 race must be detected");
    assert!(
        matches!(report.error, minjie::DiffError::Writeback { .. }),
        "{:?}",
        report.error
    );
    // LightSSS replay reproduces the mismatch within the 2N window and
    // captures debug events.
    let replay = report.replay.expect("lightsss enabled");
    assert!(replay.from_cycle <= report.at_cycle);
    assert!(
        replay.trace.records_inserted() > 0,
        "debug-mode trace captured"
    );
}
