//! Property-based tests spanning crates: encode/decode round trips,
//! softfloat-vs-host equivalence, COW snapshot isolation, and N-engine
//! agreement on torture-generated programs.

use nemu::{DromajoLike, Interpreter, Nemu, QemuTciLike, SpikeLike};
use proptest::prelude::*;
use riscv_isa::mem::PhysMem;
use workloads::{random_program, TortureConfig};

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// decode(encode(inst)) is the identity over representative fields.
    #[test]
    fn decode_encode_roundtrip(raw in any::<u32>()) {
        let d = riscv_isa::decode32(raw | 0b11);
        if d.op != riscv_isa::Op::Illegal {
            if let Some(re) = riscv_isa::encode::encode(&d) {
                let d2 = riscv_isa::decode32(re);
                prop_assert_eq!(d.op, d2.op);
                prop_assert_eq!(d.rd, d2.rd);
                prop_assert_eq!(d.rs1, d2.rs1);
            }
        }
    }

    /// Softfloat add/mul/FMA match host IEEE arithmetic bit for bit.
    #[test]
    fn softfloat_matches_host(a in any::<u64>(), b in any::<u64>(), c in any::<u64>()) {
        let canon = |x: f64| if x.is_nan() { 0x7ff8_0000_0000_0000 } else { x.to_bits() };
        let (fa, fb, fc) = (f64::from_bits(a), f64::from_bits(b), f64::from_bits(c));
        prop_assert_eq!(riscv_isa::softfloat::add64(a, b).bits, canon(fa + fb));
        prop_assert_eq!(riscv_isa::softfloat::mul64(a, b).bits, canon(fa * fb));
        prop_assert_eq!(riscv_isa::softfloat::fma64(a, b, c).bits, canon(fa.mul_add(fb, fc)));
        let (sa, sb) = (a as u32, b as u32);
        let canon32 = |x: f32| if x.is_nan() { 0x7fc0_0000 } else { x.to_bits() };
        prop_assert_eq!(
            riscv_isa::softfloat::add32(sa, sb).bits,
            canon32(f32::from_bits(sa) + f32::from_bits(sb))
        );
        prop_assert_eq!(
            riscv_isa::softfloat::mul32(sa, sb).bits,
            canon32(f32::from_bits(sa) * f32::from_bits(sb))
        );
    }

    /// COW memory snapshots are isolated from later writes.
    #[test]
    fn cow_snapshot_isolation(
        writes in prop::collection::vec((0u64..0x10_0000, any::<u64>()), 1..40)
    ) {
        let mut mem = riscv_isa::SparseMemory::new();
        for (addr, v) in &writes {
            mem.write_uint(*addr & !7, 8, *v);
        }
        let snapshot = mem.clone();
        let expected: Vec<(u64, u64)> = writes
            .iter()
            .map(|(a, _)| { let mut m = snapshot.clone(); (*a & !7, m.read_uint(*a & !7, 8)) })
            .collect();
        // Mutate the original everywhere.
        for (addr, _) in &writes {
            mem.write_uint(*addr & !7, 8, 0xdead_dead_dead_dead);
        }
        let mut snap = snapshot;
        for (addr, v) in expected {
            prop_assert_eq!(snap.read_uint(addr, 8), v);
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// All four interpreters agree exactly on random torture programs.
    #[test]
    fn four_engines_agree(seed in 0u64..10_000) {
        let cfg = TortureConfig {
            body_len: 40,
            iterations: 20,
            ..Default::default()
        };
        let p = random_program(seed, &cfg);
        let mut n = Nemu::new(&p);
        let rn = n.run(5_000_000);
        prop_assert!(rn.exit_code.is_some(), "seed {} did not halt", seed);
        let mut s = SpikeLike::new(&p);
        let mut d = DromajoLike::new(&p);
        let mut q = QemuTciLike::new(&p);
        prop_assert_eq!(rn.exit_code, s.run(5_000_000).exit_code);
        prop_assert_eq!(rn.exit_code, d.run(5_000_000).exit_code);
        prop_assert_eq!(rn.exit_code, q.run(5_000_000).exit_code);
        prop_assert_eq!(&n.hart().state.gpr, &d.hart().state.gpr);
        prop_assert_eq!(rn.instructions, d.hart().instret);
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(6))]

    /// The xscore cycle model agrees with NEMU (through DiffTest) on
    /// random programs. Expensive, so few cases; the fixed-seed sweep in
    /// difftest_suite.rs covers more.
    #[test]
    fn dut_matches_ref_on_random_programs(seed in 10_000u64..10_400) {
        let cfg = TortureConfig {
            body_len: 30,
            iterations: 12,
            ..Default::default()
        };
        let p = random_program(seed, &cfg);
        let mut xs_cfg = xscore::XsConfig::nh();
        xs_cfg.memory = xscore::MemoryModel::FixedAmat(30);
        let mut cosim = minjie::CoSim::new(xs_cfg, &p);
        match cosim.run(20_000_000) {
            minjie::CoSimEnd::Halted(_) => {}
            other => return Err(TestCaseError::fail(format!("seed {seed}: {other:?}"))),
        }
    }
}
