//! Golden pins for the per-instruction pipeline lifecycle tracer.
//!
//! Three fixed programs on the `small-nh` preset with `--lifecycle` on:
//! a load-to-use dependency chain, a data-dependent mispredicting
//! branch, and a failing store-conditional. Stage stamps (fetch /
//! rename / issue / writeback / commit cycles) are pinned *exactly* —
//! the tracer is an observability surface, so any drift in fetch,
//! scheduling, or the memory pipeline must be acknowledged here. A
//! byte-identical rerun guard and proptest invariants (monotone stamps
//! on retired uops, cause tags on squashed ones) ride along.

use minjie::{CoSim, CoSimEnd};
use proptest::prelude::*;
use riscv_isa::asm::{reg::*, Asm, Program};
use serde::Deserialize;
use workloads::{random_program, TortureConfig};
use xscore::{Lifecycle, SquashCause, XsConfig};

const BASE: u64 = 0x8000_0000;
const DATA: i64 = 0x8002_0000;

/// Run `program` with full lifecycle tracing and return the drained
/// trace (plus the end condition, for halt assertions).
fn lifecycle_trace(program: &Program, max_cycles: u64) -> (Vec<Lifecycle>, CoSimEnd) {
    let cfg = XsConfig::preset("small-nh").expect("preset").with_lifecycle();
    lifecycle_trace_cfg(cfg, program, max_cycles)
}

/// [`lifecycle_trace`] with an explicit configuration (the equivalence
/// suite flips `event_driven` on the same preset).
fn lifecycle_trace_cfg(
    cfg: XsConfig,
    program: &Program,
    max_cycles: u64,
) -> (Vec<Lifecycle>, CoSimEnd) {
    let mut cosim = CoSim::new(cfg, program);
    let end = cosim.run(max_cycles);
    let table = cosim.archdb.table("lifecycle").expect("lifecycle table exists");
    let trace = table
        .rows()
        .map(|(_, v)| Deserialize::deserialize(v).expect("lifecycle record deserializes"))
        .collect();
    (trace, end)
}

/// The retired record executing `pc`, if any (first dynamic instance).
fn retired_at(trace: &[Lifecycle], pc: u64) -> Option<&Lifecycle> {
    trace.iter().find(|r| r.pc == pc && r.retired())
}

/// Load-to-use: `sd` seeds memory, `ld` reads it back, `addi` consumes
/// the loaded value the very next instruction. Returns the program and
/// the PCs of the `ld` and its dependent `addi`.
fn load_use_program() -> (Program, u64, u64) {
    let mut a = Asm::new(BASE);
    a.li(S1, DATA);
    a.li(T0, 42);
    a.sd(T0, 0, S1);
    let ld_pc = a.here();
    a.ld(T1, 0, S1);
    let use_pc = a.here();
    a.addi(A0, T1, 1); // load-to-use dependence
    a.ebreak();
    (a.assemble(), ld_pc, use_pc)
}

/// A loop whose back-edge branch depends on a hashed counter bit: the
/// predictor cannot learn it, so the run must contain mispredict
/// squashes.
fn mispredict_program() -> Program {
    let mut a = Asm::new(BASE);
    a.li(S0, 0);
    a.li(S1, 64);
    a.li(S2, 0x9e37_79b9);
    a.li(A0, 0);
    let top = a.bound_label();
    let skip = a.label();
    a.mul(T0, S0, S2);
    a.srli(T0, T0, 13);
    a.andi(T0, T0, 1);
    a.beqz(T0, skip);
    a.addi(A0, A0, 1);
    a.bind(skip);
    a.addi(S0, S0, 1);
    a.blt(S0, S1, top);
    a.ebreak();
    a.assemble()
}

/// A store-conditional with no matching reservation: `sc.d` must fail
/// (rd = 1) and still retire through the atomic unit. Returns the
/// program and the PC of the `sc.d`.
fn sc_fail_program() -> (Program, u64) {
    let mut a = Asm::new(BASE);
    a.li(S1, DATA);
    a.li(T0, 7);
    let sc_pc = a.here();
    a.sc_d(A0, T0, S1); // no prior lr.d: fails, A0 = 1
    a.addi(A1, A0, 0); // consumes the failure code
    a.ebreak();
    (a.assemble(), sc_pc)
}

#[test]
fn load_to_use_chain_stamps_pin() {
    let (program, ld_pc, use_pc) = load_use_program();
    let (trace, end) = lifecycle_trace(&program, 100_000);
    assert!(matches!(end, CoSimEnd::Halted(_)), "did not halt: {end:?}");

    let ld = retired_at(&trace, ld_pc).expect("ld retired");
    assert!(ld.mem, "ld must be tagged as a memory op");
    let use_ = retired_at(&trace, use_pc).expect("addi retired");

    // Exact stage stamps, harvested from the pinned model. The `ld`
    // issues, gets its line, and writes back before the dependent
    // `addi` can issue: the use must issue no earlier than the load's
    // writeback cycle.
    assert_eq!(
        (
            ld.stamps.fetched,
            ld.stamps.renamed,
            ld.stamps.issued,
            ld.stamps.writeback,
            ld.committed,
        ),
        LD_PIN,
        "ld lifecycle drifted: {ld:?}"
    );
    assert_eq!(
        (
            use_.stamps.fetched,
            use_.stamps.renamed,
            use_.stamps.issued,
            use_.stamps.writeback,
            use_.committed,
        ),
        USE_PIN,
        "dependent addi lifecycle drifted: {use_:?}"
    );
    assert!(
        use_.stamps.issued >= ld.stamps.writeback,
        "use issued at {} before the load wrote back at {}",
        use_.stamps.issued,
        ld.stamps.writeback
    );
}

/// `(fetched, renamed, issued, writeback, committed)` for the load and
/// its dependent use in `load_use_program` on small-nh.
const LD_PIN: (u64, u64, u64, u64, u64) = (81, 81, 85, 87, 88);
const USE_PIN: (u64, u64, u64, u64, u64) = (81, 82, 87, 88, 88);

#[test]
fn mispredicted_branch_squashes_with_cause() {
    let (trace, end) = lifecycle_trace(&mispredict_program(), 100_000);
    assert!(matches!(end, CoSimEnd::Halted(_)), "did not halt: {end:?}");

    let squashed: Vec<&Lifecycle> = trace.iter().filter(|r| !r.retired()).collect();
    assert!(!squashed.is_empty(), "unpredictable branch squashed nothing");
    assert!(
        squashed
            .iter()
            .any(|r| r.cause == Some(SquashCause::Mispredict)),
        "no squash carries the Mispredict cause tag"
    );
    // Every squashed record is tagged, stamped with its squash cycle,
    // and has made it at least through fetch.
    for r in &squashed {
        assert!(r.cause.is_some(), "untagged squash: {r:?}");
        assert!(r.squashed_at > 0, "unstamped squash: {r:?}");
        assert!(r.stamps.fetched > 0, "squashed uop never fetched: {r:?}");
        assert!(r.committed == 0, "record both retired and squashed: {r:?}");
    }
    // The exact number of mispredict squashes is a pinned model output.
    let mispredicts = squashed
        .iter()
        .filter(|r| r.cause == Some(SquashCause::Mispredict))
        .count();
    assert_eq!(mispredicts, MISPREDICT_SQUASH_PIN, "squash volume drifted");
}

/// Number of uops squashed by mispredict recovery in
/// `mispredict_program` on small-nh.
const MISPREDICT_SQUASH_PIN: usize = 166;

#[test]
fn sc_failure_retires_through_atomic_unit() {
    let (program, sc_pc) = sc_fail_program();
    let (trace, end) = lifecycle_trace(&program, 100_000);
    let CoSimEnd::Halted(exit) = end else {
        panic!("did not halt: {end:?}");
    };
    // a0 holds the SC failure code (1) at the ebreak.
    assert_eq!(exit, 1, "sc.d with no reservation must fail");

    let sc = retired_at(&trace, sc_pc).expect("sc.d retired");
    assert!(sc.mem, "sc.d must be tagged as a memory op");
    assert_eq!(
        (
            sc.stamps.fetched,
            sc.stamps.renamed,
            sc.stamps.issued,
            sc.stamps.writeback,
            sc.committed,
        ),
        SC_PIN,
        "sc.d lifecycle drifted: {sc:?}"
    );
}

/// `(fetched, renamed, issued, writeback, committed)` for the failing
/// `sc.d` in `sc_fail_program` on small-nh.
const SC_PIN: (u64, u64, u64, u64, u64) = (81, 81, 86, 86, 86);

#[test]
fn squashed_lr_leaves_no_reservation_for_sc() {
    // A cold conditional branch is predicted taken (predecoded target),
    // and its condition hangs off a 20-cycle divide, so it resolves
    // late. The branch is architecturally NOT taken: the wrong path at
    // the predicted target — an `lr.d` — is fetched and dispatched, then
    // squashed by the mispredict recovery. The squashed LR must leave no
    // reservation (and no stale `lr_cycle` window) behind: the `sc.d` on
    // the correct fall-through path, to the very same address, must
    // still fail.
    let mut a = Asm::new(BASE);
    a.li(S1, DATA);
    a.li(T0, 7);
    a.li(T1, 3);
    a.div(T3, T1, T1); // T3 = 1, available ~20 cycles after issue
    let lr_block = a.label();
    a.beqz(T3, lr_block); // T3 = 1: not taken; cold predictor takes it
    let sc_pc = a.here();
    a.sc_d(A0, T0, S1); // no architectural reservation: must fail, A0 = 1
    a.ebreak();
    a.bind(lr_block);
    let lr_pc = a.here();
    a.lr_d(T2, S1); // wrong path: fetched, squashed, never executed
    a.ebreak();
    let program = a.assemble();

    let (trace, end) = lifecycle_trace(&program, 100_000);
    let CoSimEnd::Halted(exit) = end else {
        panic!("did not halt: {end:?}");
    };
    assert_eq!(exit, 1, "sc.d after a squashed lr.d must fail");

    // The wrong-path LR shows up in the trace as a mispredict squash —
    // proof the hazard path was actually exercised.
    let lr = trace
        .iter()
        .find(|r| r.pc == lr_pc)
        .expect("wrong-path lr.d was fetched");
    assert!(!lr.retired(), "wrong-path lr.d retired: {lr:?}");
    assert_eq!(lr.cause, Some(SquashCause::Mispredict), "{lr:?}");

    let sc = retired_at(&trace, sc_pc).expect("sc.d retired");
    assert!(sc.mem, "sc.d must be tagged as a memory op");
}

#[test]
fn lifecycle_trace_unchanged_by_event_skip() {
    // Cycle-skip equivalence on the observability surface: with the
    // event queue force-disabled, the full lifecycle trace (every stage
    // stamp of every uop, retired and squashed) must be byte-identical
    // to the skipping run's.
    let p = mispredict_program();
    let run = |on: bool| {
        let cfg = XsConfig::preset("small-nh")
            .expect("preset")
            .with_lifecycle()
            .with_event_driven(on);
        let (trace, end) = lifecycle_trace_cfg(cfg, &p, 100_000);
        assert!(
            matches!(end, CoSimEnd::Halted(_)),
            "event_driven={on} did not halt: {end:?}"
        );
        serde_json::to_string(&trace).expect("trace serializes")
    };
    let skipping = run(true);
    let tick_by_tick = run(false);
    assert_eq!(skipping, tick_by_tick, "lifecycle traces diverged");
}

#[test]
fn lifecycle_trace_is_byte_identical_across_reruns() {
    let p = mispredict_program();
    let (a, _) = lifecycle_trace(&p, 100_000);
    let (b, _) = lifecycle_trace(&p, 100_000);
    let ja = serde_json::to_string(&a).expect("trace serializes");
    let jb = serde_json::to_string(&b).expect("trace serializes");
    assert_eq!(ja, jb, "same-seed lifecycle traces differ");
    assert!(!a.is_empty(), "trace is empty");
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// On random torture programs every retired uop's stamps are
    /// monotone through the pipe and every squashed uop carries a
    /// cause tag — the invariants pipeview's waterfall rendering
    /// relies on.
    #[test]
    fn stamps_monotone_and_squashes_tagged(seed in 0u64..10_000) {
        let cfg = TortureConfig { body_len: 60, iterations: 8, ..TortureConfig::default() }
            .clamped();
        let program = random_program(seed, &cfg);
        let (trace, _) = lifecycle_trace(&program, 200_000);
        prop_assert!(!trace.is_empty(), "seed {} traced nothing", seed);
        for r in &trace {
            let s = &r.stamps;
            if r.retired() {
                prop_assert!(s.fetched > 0 && r.committed > 0, "zero stamps: {:?}", r);
                prop_assert!(s.fetched <= s.decoded, "fetch/decode: {:?}", r);
                prop_assert!(s.decoded <= s.renamed, "decode/rename: {:?}", r);
                prop_assert!(s.renamed <= s.dispatched, "rename/dispatch: {:?}", r);
                prop_assert!(s.dispatched <= s.issued, "dispatch/issue: {:?}", r);
                prop_assert!(s.issued <= s.executed, "issue/execute: {:?}", r);
                prop_assert!(s.executed <= s.writeback, "execute/wb: {:?}", r);
                prop_assert!(s.writeback <= r.committed, "wb/commit: {:?}", r);
                prop_assert!(r.squashed_at == 0 && r.cause.is_none(), "retired+squashed: {:?}", r);
            } else {
                prop_assert!(r.squashed_at > 0, "squash not stamped: {:?}", r);
                prop_assert!(r.cause.is_some(), "squash not tagged: {:?}", r);
                prop_assert!(s.fetched > 0, "squashed uop never fetched: {:?}", r);
                prop_assert!(s.fetched <= r.squashed_at, "squashed before fetch: {:?}", r);
            }
        }
    }
}
