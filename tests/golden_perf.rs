//! Golden performance regressions over the telemetry subsystem.
//!
//! Two layers of protection:
//!
//! - the top-down CPI identity (`sum(components) == cycles *
//!   commit_width`) must hold *exactly* on every tier-1 workload — it is
//!   an invariant of the attributor, not a tuning target;
//! - headline metrics (IPC, branch MPKI, L1D miss rate, dominant stall
//!   component) are pinned for two kernels on both cache hierarchies.
//!   These change only when the microarchitectural model changes; a
//!   failing pin is a request to justify the perf delta, not to loosen
//!   the test.

use campaign::{Campaign, JobSpec, Verdict, WorkloadSource};
use minjie::PerfSnapshot;
use workloads::TortureConfig;
use xscore::{XsConfig, XsSystem};

fn run_kernel(name: &str, config: &str) -> PerfSnapshot {
    let spec = JobSpec::new(WorkloadSource::kernel(name), config).with_max_cycles(8_000_000);
    let report = Campaign::new(vec![spec]).with_workers(1).run();
    let job = report.jobs.into_iter().next().expect("one record");
    assert!(
        matches!(job.verdict, Verdict::Halted { .. }),
        "{name}/{config}: {:?}",
        job.verdict
    );
    job.perf
}

/// Round to 3 decimals, the report's own IPC convention.
fn r3(x: f64) -> f64 {
    (x * 1000.0).round() / 1000.0
}

#[test]
fn cpi_identity_holds_on_every_tier1_workload() {
    // Every kernel in the suite plus a batch of torture seeds, on both
    // cache hierarchies: the attributor must account for every commit
    // slot of every cycle with no gaps and no double counting.
    let mut jobs = Vec::new();
    for config in ["small-nh", "small-yqh"] {
        for name in workloads::NAMES {
            jobs.push(
                JobSpec::new(WorkloadSource::kernel(name), config).with_max_cycles(8_000_000),
            );
        }
        for seed in 0..3 {
            jobs.push(
                JobSpec::new(
                    WorkloadSource::torture(seed, TortureConfig::default()),
                    config,
                )
                .with_max_cycles(8_000_000),
            );
        }
    }
    let report = Campaign::new(jobs).with_workers(4).with_minimization(false).run();
    assert_eq!(report.summary.halted, report.summary.total, "{}", report.deterministic_json());
    for j in &report.jobs {
        assert!(
            j.perf.cpi_identity_holds(),
            "{} on {}: CPI stack {:?} does not sum to cycles * width",
            j.workload,
            j.config,
            j.perf.cpi_stack()
        );
        assert!(j.perf.cpi_stack().retired > 0, "{} retired nothing", j.workload);
    }
}

#[test]
fn same_seed_runs_identical_with_traffic_in_flight() {
    // Regression for the in-flight request table: the old
    // `HashMap<u64, MemReqKind>` iterated in hash order, so any future
    // order-sensitive use was a latent nondeterminism. The arena that
    // replaced it is slot-ordered by construction; two identically-seeded
    // runs snapshotted *while memory traffic is still in flight* must be
    // byte-identical. mcf is the cache-hostile kernel, so its L1D keeps
    // missing for the whole run — traffic is in flight at any cycle.
    let program = WorkloadSource::kernel("mcf").build();
    let run = || {
        let cfg = XsConfig::preset("small-nh").expect("known preset");
        let mut sys = XsSystem::new(cfg, &program);
        sys.run(10_000);
        assert!(!sys.all_halted(), "budget must expire mid-run");
        // Advance to the next cycle with L1D transactions in flight so
        // the snapshot observes a non-empty request table.
        let mut guard = 0u32;
        while sys.mem.l1d_active_txns(0) == 0 {
            sys.tick();
            guard += 1;
            assert!(guard < 100_000, "no memory traffic found in flight");
        }
        let snap = PerfSnapshot::collect(&sys);
        (
            sys.cores[0].cycle(),
            sys.mem.l1d_active_txns(0),
            serde_json::to_string(&snap).expect("snapshot serializes"),
        )
    };
    let (cycle_a, inflight_a, snap_a) = run();
    let (cycle_b, inflight_b, snap_b) = run();
    assert!(inflight_a > 0);
    assert_eq!(cycle_a, cycle_b, "same-seed runs reached different cycles");
    assert_eq!(inflight_a, inflight_b, "in-flight traffic diverged");
    assert_eq!(snap_a, snap_b, "same-seed snapshots diverged");
}

#[test]
fn event_skip_equivalence_is_exact() {
    // The cycle-skip equivalence suite: with the event queue force-
    // disabled (`with_event_driven(false)`), a tick-by-tick run must be
    // indistinguishable from the skipping run — same cycle count, same
    // commit trace, and the same serialized PerfSnapshot (which covers
    // the CPI stack, lifecycle digest, and telemetry histograms).
    for (name, config) in [("mcf", "small-nh"), ("libquantum", "small-yqh")] {
        let program = WorkloadSource::kernel(name).build();
        let run = |on: bool| {
            let cfg = XsConfig::preset(config)
                .expect("known preset")
                .with_event_driven(on);
            let mut sys = XsSystem::new(cfg, &program);
            let commits = sys.run_collect(300_000);
            let snap = PerfSnapshot::collect(&sys);
            assert!(
                snap.cpi_identity_holds(),
                "{name}/{config} (event_driven={on}): CPI identity broken"
            );
            (
                sys.cores[0].cycle(),
                commits,
                serde_json::to_string(&snap).expect("snapshot serializes"),
            )
        };
        let (cycles_on, commits_on, snap_on) = run(true);
        let (cycles_off, commits_off, snap_off) = run(false);
        assert_eq!(cycles_on, cycles_off, "{name}/{config}: cycle counts diverged");
        assert!(!commits_on.is_empty(), "{name}/{config}: no commits observed");
        if commits_on != commits_off {
            let i = commits_on
                .iter()
                .zip(&commits_off)
                .position(|(a, b)| a != b)
                .unwrap_or(commits_on.len().min(commits_off.len()));
            panic!(
                "{name}/{config}: commit traces diverge at index {i} \
                 ({} vs {} events)",
                commits_on.len(),
                commits_off.len()
            );
        }
        assert_eq!(snap_on, snap_off, "{name}/{config}: snapshots diverged");
    }
}

#[test]
fn golden_pins_mcf() {
    // mcf is the pointer-chasing cache-hostile kernel: the no-L3 `nh`
    // hierarchy gets crushed (70% L1D miss rate, memory-bound CPI),
    // while `yqh`'s L2+L3 recover a big fraction of the stall slots.
    let nh = run_kernel("mcf", "small-nh");
    assert_eq!(r3(nh.ipc()), 0.233);
    assert_eq!(r3(nh.mpki()), 0.097);
    assert_eq!(r3(nh.l1d_miss_rate()), 0.709);
    assert_eq!(nh.cpi_stack().top_stall().0, "memory_stall");

    let yqh = run_kernel("mcf", "small-yqh");
    assert_eq!(r3(yqh.ipc()), 0.347);
    assert_eq!(r3(yqh.mpki()), 0.097);
    assert_eq!(r3(yqh.l1d_miss_rate()), 0.073);
    assert_eq!(yqh.cpi_stack().top_stall().0, "memory_stall");
    assert!(yqh.ipc() > nh.ipc(), "the deeper hierarchy must win on mcf");
}

#[test]
fn golden_pins_libquantum() {
    // libquantum streams over a large array: high IPC, miss rate set by
    // the prefetch-free line-granularity streaming pattern.
    let nh = run_kernel("libquantum", "small-nh");
    assert_eq!(r3(nh.ipc()), 1.596);
    assert_eq!(r3(nh.mpki()), 0.092);
    assert_eq!(r3(nh.l1d_miss_rate()), 0.119);
    assert_eq!(nh.cpi_stack().top_stall().0, "memory_stall");

    let yqh = run_kernel("libquantum", "small-yqh");
    assert_eq!(r3(yqh.ipc()), 1.754);
    assert_eq!(r3(yqh.mpki()), 0.092);
    assert_eq!(r3(yqh.l1d_miss_rate()), 0.035);
    assert_eq!(yqh.cpi_stack().top_stall().0, "memory_stall");
}
