//! Golden performance regressions over the telemetry subsystem.
//!
//! Two layers of protection:
//!
//! - the top-down CPI identity (`sum(components) == cycles *
//!   commit_width`) must hold *exactly* on every tier-1 workload — it is
//!   an invariant of the attributor, not a tuning target;
//! - headline metrics (IPC, branch MPKI, L1D miss rate, dominant stall
//!   component) are pinned for two kernels on both cache hierarchies.
//!   These change only when the microarchitectural model changes; a
//!   failing pin is a request to justify the perf delta, not to loosen
//!   the test.

use campaign::{Campaign, JobSpec, Verdict, WorkloadSource};
use minjie::PerfSnapshot;
use workloads::TortureConfig;

fn run_kernel(name: &str, config: &str) -> PerfSnapshot {
    let spec = JobSpec::new(WorkloadSource::kernel(name), config).with_max_cycles(8_000_000);
    let report = Campaign::new(vec![spec]).with_workers(1).run();
    let job = report.jobs.into_iter().next().expect("one record");
    assert!(
        matches!(job.verdict, Verdict::Halted { .. }),
        "{name}/{config}: {:?}",
        job.verdict
    );
    job.perf
}

/// Round to 3 decimals, the report's own IPC convention.
fn r3(x: f64) -> f64 {
    (x * 1000.0).round() / 1000.0
}

#[test]
fn cpi_identity_holds_on_every_tier1_workload() {
    // Every kernel in the suite plus a batch of torture seeds, on both
    // cache hierarchies: the attributor must account for every commit
    // slot of every cycle with no gaps and no double counting.
    let mut jobs = Vec::new();
    for config in ["small-nh", "small-yqh"] {
        for name in workloads::NAMES {
            jobs.push(
                JobSpec::new(WorkloadSource::kernel(name), config).with_max_cycles(8_000_000),
            );
        }
        for seed in 0..3 {
            jobs.push(
                JobSpec::new(
                    WorkloadSource::torture(seed, TortureConfig::default()),
                    config,
                )
                .with_max_cycles(8_000_000),
            );
        }
    }
    let report = Campaign::new(jobs).with_workers(4).with_minimization(false).run();
    assert_eq!(report.summary.halted, report.summary.total, "{}", report.deterministic_json());
    for j in &report.jobs {
        assert!(
            j.perf.cpi_identity_holds(),
            "{} on {}: CPI stack {:?} does not sum to cycles * width",
            j.workload,
            j.config,
            j.perf.cpi_stack()
        );
        assert!(j.perf.cpi_stack().retired > 0, "{} retired nothing", j.workload);
    }
}

#[test]
fn golden_pins_mcf() {
    // mcf is the pointer-chasing cache-hostile kernel: the no-L3 `nh`
    // hierarchy gets crushed (70% L1D miss rate, memory-bound CPI),
    // while `yqh`'s L2+L3 recover a big fraction of the stall slots.
    let nh = run_kernel("mcf", "small-nh");
    assert_eq!(r3(nh.ipc()), 0.233);
    assert_eq!(r3(nh.mpki()), 0.097);
    assert_eq!(r3(nh.l1d_miss_rate()), 0.709);
    assert_eq!(nh.cpi_stack().top_stall().0, "memory_stall");

    let yqh = run_kernel("mcf", "small-yqh");
    assert_eq!(r3(yqh.ipc()), 0.347);
    assert_eq!(r3(yqh.mpki()), 0.097);
    assert_eq!(r3(yqh.l1d_miss_rate()), 0.073);
    assert_eq!(yqh.cpi_stack().top_stall().0, "memory_stall");
    assert!(yqh.ipc() > nh.ipc(), "the deeper hierarchy must win on mcf");
}

#[test]
fn golden_pins_libquantum() {
    // libquantum streams over a large array: high IPC, miss rate set by
    // the prefetch-free line-granularity streaming pattern.
    let nh = run_kernel("libquantum", "small-nh");
    assert_eq!(r3(nh.ipc()), 1.596);
    assert_eq!(r3(nh.mpki()), 0.092);
    assert_eq!(r3(nh.l1d_miss_rate()), 0.119);
    assert_eq!(nh.cpi_stack().top_stall().0, "memory_stall");

    let yqh = run_kernel("libquantum", "small-yqh");
    assert_eq!(r3(yqh.ipc()), 1.754);
    assert_eq!(r3(yqh.mpki()), 0.092);
    assert_eq!(r3(yqh.l1d_miss_rate()), 0.035);
    assert_eq!(yqh.cpi_stack().top_stall().0, "memory_stall");
}
