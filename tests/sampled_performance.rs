//! The §III-D3 performance-evaluation workflow end to end: profile with
//! NEMU, select SimPoints, simulate only the representative checkpoints
//! on the cycle model (with warm-up), and compare the weighted CPI
//! against the full-run CPI.
//!
//! The paper reports a 5-10% deviation between this methodology and full
//! runs; this test allows a wider (25%) band because the test-scale
//! intervals are far shorter than the paper's multi-million-instruction
//! fragments.

use checkpoint::{generate_checkpoints, weighted_cpi};
use workloads::{workload, Scale};
use xscore::{XsConfig, XsSystem};

fn small_nh() -> XsConfig {
    let mut c = XsConfig::nh();
    c.l1i = uncore::CacheConfig::new("l1i", 8192, 2, 2, 4);
    c.l1d = uncore::CacheConfig::new("l1d", 8192, 2, 4, 8);
    c.l2 = uncore::CacheConfig::new("l2", 32768, 4, 10, 8);
    c.l3 = Some(uncore::CacheConfig::new("l3", 131072, 4, 20, 16));
    c.memory = xscore::MemoryModel::FixedAmat(40);
    c
}

fn full_run_cpi(cfg: &XsConfig, program: &riscv_isa::asm::Program) -> f64 {
    let mut sys = XsSystem::new(cfg.clone(), program);
    sys.run(200_000_000).expect("halts");
    1.0 / sys.cores[0].perf.ipc()
}

fn sampled_cpi(
    cfg: &XsConfig,
    set: &checkpoint::CheckpointSet,
    warmup: u64,
    window: u64,
) -> f64 {
    let mut cpis = Vec::new();
    let mut weights = Vec::new();
    for c in &set.checkpoints {
        let mut sys = XsSystem::from_memory(cfg.clone(), c.memory.clone(), c.state.pc);
        sys.restore(&c.state);
        let mut guard = 0u64;
        while sys.cores[0].instret() < warmup && !sys.all_halted() {
            sys.tick();
            guard += 1;
            assert!(guard < 50_000_000);
        }
        let (c0, i0) = (sys.cores[0].cycle(), sys.cores[0].instret());
        while sys.cores[0].instret() < i0 + window && !sys.all_halted() {
            sys.tick();
        }
        let di = sys.cores[0].instret() - i0;
        if di == 0 {
            continue; // checkpoint too close to the end
        }
        let dc = sys.cores[0].cycle() - c0;
        cpis.push(dc as f64 / di as f64);
        weights.push(c.weight);
    }
    assert!(!cpis.is_empty(), "at least one measurable checkpoint");
    weighted_cpi(&cpis, &weights)
}

#[test]
fn weighted_cpi_tracks_full_run() {
    let cfg = small_nh();
    for name in ["sjeng", "hmmer", "libquantum"] {
        let w = workload(name, Scale::Test);
        let full = full_run_cpi(&cfg, &w.program);
        let set = generate_checkpoints(&w.program, 8_000, 4, 100_000_000);
        let sampled = sampled_cpi(&cfg, &set, 2_000, 5_000);
        let err = (sampled / full - 1.0).abs();
        println!("{name}: full CPI {full:.3}, sampled {sampled:.3}, err {:.1}%", err * 100.0);
        assert!(
            err < 0.25,
            "{name}: sampled {sampled:.3} vs full {full:.3} ({:.1}% off)",
            err * 100.0
        );
    }
}

#[test]
fn more_clusters_do_not_hurt() {
    // 100% coverage (k = number of intervals) must reproduce the run at
    // least as faithfully as a single cluster, on a phase-changing kernel.
    let cfg = small_nh();
    let w = workload("bzip2", Scale::Test);
    let full = full_run_cpi(&cfg, &w.program);
    let coarse = {
        let set = generate_checkpoints(&w.program, 10_000, 1, 100_000_000);
        sampled_cpi(&cfg, &set, 2_000, 5_000)
    };
    let fine = {
        let set = generate_checkpoints(&w.program, 10_000, 16, 100_000_000);
        sampled_cpi(&cfg, &set, 2_000, 5_000)
    };
    let e_coarse = (coarse / full - 1.0).abs();
    let e_fine = (fine / full - 1.0).abs();
    println!("bzip2: full {full:.3} coarse {coarse:.3} ({e_coarse:.3}) fine {fine:.3} ({e_fine:.3})");
    assert!(
        e_fine <= e_coarse + 0.05,
        "higher clustering coverage must not degrade accuracy materially"
    );
}
