//! Golden coverage pins for the fuzzing subsystem.
//!
//! One fixed-seed, single-round, 12-job fuzz campaign on `small-nh` must
//! keep hitting pinned coverage floors: distinct opcodes, all five
//! integer functional classes, the macro-fusion diff rule, and the core
//! pipeline events. The run is fully deterministic (seeded generation,
//! integer-only coverage), so a failing floor means the generator or a
//! coverage family actually lost expressive power — justify the delta,
//! don't loosen the pin. Floors sit ~15% under the measured values so
//! benign model tuning doesn't trip them.

use campaign::{run_fuzz, CoverageSet, FuzzOpts};
use minjie::DiffRule;
use std::collections::BTreeSet;

fn pinned_round() -> campaign::FuzzOutcome {
    let mut opts = FuzzOpts::new(7);
    opts.rounds = 1;
    opts.jobs_per_round = 12;
    opts.configs = vec!["small-nh".into()];
    opts.workers = 4;
    opts.max_cycles = 6_000_000;
    opts.minimize = false;
    opts.triage = false;
    run_fuzz(&opts)
}

#[test]
fn fixed_seed_round_hits_coverage_floors() {
    let out = pinned_round();
    let report = &out.report;
    assert_eq!(
        report.summary.halted, report.summary.total,
        "pinned fuzz round must be divergence-free: {}",
        report.deterministic_json()
    );
    assert_eq!(report.summary.total, 12);

    // Union the per-job maps exactly as the scheduler does.
    let mut set = CoverageSet::default();
    let mut opcodes = BTreeSet::new();
    let mut classes = BTreeSet::new();
    let mut events = BTreeSet::new();
    let mut fusion = 0u64;
    for j in &report.jobs {
        let cov = j
            .coverage
            .as_ref()
            .expect("fuzz jobs always collect coverage");
        set.absorb(cov);
        opcodes.extend(cov.opcodes.iter().map(|(n, _)| n.clone()));
        classes.extend(cov.op_classes.iter().map(|(n, _)| n.clone()));
        events.extend(cov.events.iter().map(|(n, _)| n.clone()));
        fusion += cov.rule_count(DiffRule::MacroFusion);
    }

    // Measured at introduction (seed 7): 67 features, 56 opcodes,
    // macro-fusion x365, 5 events.
    assert!(set.len() >= 56, "feature union shrank: {}", set.len());
    assert!(opcodes.len() >= 48, "opcode coverage shrank: {opcodes:?}");
    for class in ["Alu", "Bru", "Load", "Mdu", "Store"] {
        assert!(classes.contains(class), "missing class {class}: {classes:?}");
    }
    assert!(fusion >= 100, "macro-fusion rule coverage shrank: {fusion}");
    for evt in [
        "branch-mispredict",
        "dram-access",
        "flush-mispredict",
        "load-forward",
    ] {
        assert!(events.contains(evt), "missing event {evt}: {events:?}");
    }

    // The fuzz summary mirrors the same union.
    let fuzz = report.fuzz.as_ref().expect("fuzz section");
    assert_eq!(fuzz.total_features, set.len() as u64);
    assert_eq!(fuzz.rounds.len(), 1);
    assert_eq!(fuzz.rounds[0].jobs, 12);
    assert_eq!(fuzz.rounds[0].cumulative_features, set.len() as u64);
}

#[test]
fn pinned_round_is_deterministic() {
    let a = pinned_round();
    let b = pinned_round();
    assert_eq!(a.report.deterministic_json(), b.report.deterministic_json());
    assert_eq!(a.corpus, b.corpus);
}

/// Every interpreter personality (plus the architectural default REF)
/// backs a small fixed-seed fuzz round without diverging. The list is
/// derived from [`nemu::registry`], not written out, so adding a
/// personality enrolls it here automatically instead of silently
/// skipping fuzz coverage for the new tier.
#[test]
fn every_personality_serves_as_fuzz_ref() {
    let mut refs = vec![minjie::ARCH_REF_NAME];
    refs.extend(nemu::registry::names());
    assert!(refs.len() >= 6, "personality registry lost a tier: {refs:?}");
    for r in refs {
        let mut opts = FuzzOpts::new(7);
        opts.rounds = 1;
        opts.jobs_per_round = 4;
        opts.configs = vec!["small-nh".into()];
        opts.workers = 4;
        opts.max_cycles = 4_000_000;
        opts.minimize = false;
        opts.triage = false;
        opts.ref_model = Some(r.to_string());
        let out = run_fuzz(&opts);
        assert_eq!(
            out.report.summary.halted, out.report.summary.total,
            "REF {r}: fuzz round not divergence-free: {}",
            out.report.deterministic_json()
        );
        assert_eq!(out.report.summary.total, 4, "REF {r}: job count");
    }
}
