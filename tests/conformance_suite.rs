//! Cross-interpreter conformance tier.
//!
//! Every block below runs one hand-written per-extension program through
//! every interpreter personality in [`nemu::registry`] — plain
//! decode-and-execute (`dromajo-like`), bytecode dispatch
//! (`qemu-tci-like`), decode cache + SoftFloat (`spike-like`), the fast
//! block-chaining uop cache (`nemu`), and the superblock trace tier
//! (`nemu-trace`) — and asserts identical architectural state afterwards:
//! exit code, PC, all 32 GPRs, all 32 FPRs, and the retired-instruction
//! count.
//!
//! This is where fast-path specialization bugs show up: `li`/`mv`/`ret`/
//! `auipc` shortcuts, discarded x0 writes, block chaining, superblock
//! formation, exit-edge patching, and load/store micro-TLBs only exist
//! in the fast tiers, so any divergence from the baselines pins the bug
//! to that specialization. The matrix is registry-driven: adding a
//! personality automatically enrolls it here. A second, pure tier
//! cross-checks the interpreters against `riscv_isa::exec` directly: for
//! an op and operand matrix, the architectural exit code must equal what
//! [`int_compute`] / [`branch_taken`] / [`amo_compute`] say in isolation.
//! A final block pins the trace-tier invalidation rules (`fence.i`,
//! `sfence.vma`, satp rewrite, indirect-jump retarget) with programs
//! whose *results* change if stale traces or micro-TLB entries survive.

use nemu::registry::PERSONALITIES;
use nemu::{Interpreter, NemuTrace};
use riscv_isa::asm::{reg::*, Asm, Program};
use riscv_isa::exec::{amo_compute, branch_taken, int_compute};
use riscv_isa::Op;

const FUEL: u64 = 2_000_000;
const BASE: u64 = 0x8000_0000;

/// Run `p` on every registered interpreter personality; assert they all
/// halt with identical architectural state and return the common exit
/// code.
fn conform(p: &Program) -> u64 {
    let mut engines: Vec<(&'static str, Box<dyn Interpreter>)> = PERSONALITIES
        .iter()
        .map(|pers| (pers.name, (pers.build)(p)))
        .collect();
    assert!(
        engines.len() >= 5,
        "personality registry lost a tier: {:?}",
        nemu::registry::names()
    );
    let (head, rest) = engines.split_first_mut().expect("registry is non-empty");
    let r0 = head.1.run(FUEL);
    assert!(
        r0.exit_code.is_some(),
        "program did not halt under {}",
        head.0
    );
    for (name, e) in rest {
        let r = e.run(FUEL);
        assert_eq!(r0.exit_code, r.exit_code, "{name}: exit code");
        assert_eq!(r0.instructions, r.instructions, "{name}: instret");
        assert_eq!(head.1.hart().state.pc, e.hart().state.pc, "{name}: pc");
        assert_eq!(head.1.hart().state.gpr, e.hart().state.gpr, "{name}: gpr file");
        assert_eq!(head.1.hart().state.fpr, e.hart().state.fpr, "{name}: fpr file");
    }
    r0.exit_code.unwrap()
}

/// Interesting 64-bit operand values for the exec cross-check matrix.
const OPERANDS: [u64; 8] = [
    0,
    1,
    u64::MAX,                  // -1
    i64::MIN as u64,           // signed-overflow edge for div/rem
    0x8000_0000,               // W-op sign boundary
    0x0123_4567_89ab_cdef,     // byte-distinct pattern
    0xffff_ffff_0000_0001,     // upper-half set
    63,                        // full shift amount
];

// ---------------------------------------------------------------------
// RV64I
// ---------------------------------------------------------------------

#[test]
fn rv64i_alu_register_register() {
    let mut a = Asm::new(BASE);
    a.li(T0, 0x0123_4567_89ab_cdefu64 as i64);
    a.li(T1, -7);
    a.add(T2, T0, T1);
    a.sub(T3, T0, T1);
    a.sll(T4, T0, T1); // shift amount masked to 63
    a.srl(T5, T0, T1);
    a.sra(T6, T0, T1);
    a.slt(S0, T1, T0);
    a.sltu(S1, T1, T0);
    a.xor(S2, T0, T1);
    a.or(S3, T0, T1);
    a.and(S4, T0, T1);
    a.addw(S5, T0, T1);
    a.subw(S6, T0, T1);
    a.sllw(S7, T0, T1);
    a.srlw(S8, T0, T1);
    a.sraw(S9, T0, T1);
    // Fold everything into one checksum so a single wrong lane flips it.
    a.mv(A0, T2);
    for r in [T3, T4, T5, T6, S0, S1, S2, S3, S4, S5, S6, S7, S8, S9] {
        a.add(A0, A0, r);
    }
    a.ebreak();
    conform(&a.assemble());
}

#[test]
fn rv64i_alu_immediates() {
    let mut a = Asm::new(BASE);
    a.li(T0, 0xdead_beef_cafe_f00du64 as i64);
    a.addi(T1, T0, -2048);
    a.slti(T2, T0, 2047);
    a.sltiu(T3, T0, 2047);
    a.xori(T4, T0, -1); // pseudo `not`
    a.ori(S0, T0, 0x555);
    a.andi(S1, T0, 0x555);
    a.slli(S2, T0, 13);
    a.srli(S3, T0, 13);
    a.srai(S4, T0, 13);
    a.addiw(S5, T0, 100);
    a.slliw(S6, T0, 5);
    a.srliw(S7, T0, 5);
    a.sraiw(S8, T0, 5);
    a.mv(A0, T1);
    for r in [T2, T3, T4, S0, S1, S2, S3, S4, S5, S6, S7, S8] {
        a.add(A0, A0, r);
    }
    a.ebreak();
    conform(&a.assemble());
}

#[test]
fn rv64i_loads_and_stores_all_widths() {
    let mut a = Asm::new(BASE);
    let data = a.label();
    a.la(S0, data);
    a.li(T0, 0x8182_8384_8586_8788u64 as i64); // every byte has bit 7 set
    a.sd(T0, 0, S0);
    a.sw(T0, 8, S0);
    a.sh(T0, 12, S0);
    a.sb(T0, 14, S0);
    // Reload through every width; signed widths must sign-extend.
    a.ld(T1, 0, S0);
    a.lw(T2, 0, S0);
    a.lwu(T3, 0, S0);
    a.lh(T4, 0, S0);
    a.lhu(T5, 0, S0);
    a.lb(T6, 0, S0);
    a.lbu(S1, 0, S0);
    a.lw(S2, 8, S0);
    a.lhu(S3, 12, S0);
    a.lbu(S4, 14, S0);
    a.mv(A0, T1);
    for r in [T2, T3, T4, T5, T6, S1, S2, S3, S4] {
        a.add(A0, A0, r);
    }
    a.ebreak();
    a.align(3);
    a.bind(data);
    a.zeros(32);
    conform(&a.assemble());
}

#[test]
fn rv64i_branches_jumps_lui_auipc() {
    let mut a = Asm::new(BASE);
    a.li(A0, 0);
    a.li(T0, -5);
    a.li(T1, 5);
    // Each taken/not-taken edge adds a distinct weight to A0.
    let l1 = a.label();
    a.blt(T0, T1, l1);
    a.addi(A0, A0, 1000); // skipped
    a.bind(l1);
    a.addi(A0, A0, 1);
    let l2 = a.label();
    a.bltu(T0, T1, l2); // NOT taken: -5 is huge unsigned
    a.addi(A0, A0, 2);
    a.bind(l2);
    let l3 = a.label();
    a.bge(T1, T0, l3);
    a.addi(A0, A0, 1000); // skipped
    a.bind(l3);
    let l4 = a.label();
    a.bgeu(T1, T0, l4); // NOT taken
    a.addi(A0, A0, 4);
    a.bind(l4);
    let l5 = a.label();
    a.beq(T0, T0, l5);
    a.addi(A0, A0, 1000); // skipped
    a.bind(l5);
    let l6 = a.label();
    a.bne(T0, T0, l6); // NOT taken
    a.addi(A0, A0, 8);
    a.bind(l6);
    // lui/auipc: both PC-relative and absolute upper-immediate forms.
    a.lui(T2, 0x12345 << 12);
    a.srli(T2, T2, 12);
    a.add(A0, A0, T2);
    a.auipc(T3, 0);
    a.auipc(T4, 0);
    a.sub(T4, T4, T3); // distance between the two auipcs = 4
    a.add(A0, A0, T4);
    // jal/jalr round trip.
    let fun = a.label();
    let done = a.label();
    a.call(fun);
    a.j(done);
    a.bind(fun);
    a.addi(A0, A0, 16);
    a.ret();
    a.bind(done);
    a.ebreak();
    assert_eq!(conform(&a.assemble()), 1 + 2 + 4 + 8 + 0x12345 + 4 + 16);
}

// ---------------------------------------------------------------------
// RV64M — including division edge cases
// ---------------------------------------------------------------------

#[test]
fn rv64m_muldiv_edges() {
    let mut a = Asm::new(BASE);
    a.li(T0, i64::MIN);
    a.li(T1, -1);
    a.li(T2, 0);
    // Signed-overflow and divide-by-zero cases are fully defined in
    // RISC-V; all engines must produce the same architected values.
    a.div(T3, T0, T1); // MIN / -1 = MIN
    a.rem(T4, T0, T1); // MIN % -1 = 0
    a.div(T5, T0, T2); // x / 0 = -1
    a.rem(T6, T0, T2); // x % 0 = x
    a.divu(S0, T0, T2); // = u64::MAX
    a.remu(S1, T0, T2); // = x
    a.divw(S2, T0, T1); // i32 path sees 0 / -1
    a.remw(S3, T0, T2);
    a.divuw(S4, T0, T2);
    a.remuw(S5, T0, T2);
    a.mulh(S6, T0, T1);
    a.mulhu(S7, T0, T1);
    a.mulhsu(S8, T0, T1);
    a.mul(S9, T0, T0);
    a.mulw(S10, T0, T1);
    a.mv(A0, T3);
    for r in [T4, T5, T6, S0, S1, S2, S3, S4, S5, S6, S7, S8, S9, S10] {
        a.add(A0, A0, r);
    }
    a.ebreak();
    conform(&a.assemble());
}

// ---------------------------------------------------------------------
// RV64A — LR/SC and AMOs
// ---------------------------------------------------------------------

#[test]
fn rv64a_lrsc_and_amos() {
    let mut a = Asm::new(BASE);
    let cell = a.label();
    a.la(S0, cell);
    a.li(T0, 41);
    a.sd(T0, 0, S0);
    // LR/SC increment loop: retry until the SC succeeds.
    let retry = a.bound_label();
    a.lr_d(T1, S0);
    a.addi(T1, T1, 1);
    a.sc_d(T2, T1, S0);
    a.bnez(T2, retry);
    // AMOs over the same cell; rd gets the old value each time.
    a.li(T3, 100);
    a.amoadd_d(T4, T3, S0); // old=42, cell=142
    a.li(T3, -1);
    a.amoadd_w(T5, T3, S0); // W-width wrap, old=142 sext
    a.li(T3, 7);
    a.amoswap_w(T6, T3, S0); // old=141 sext, cell low word = 7
    a.ld(S1, 0, S0);
    a.add(A0, T4, T5);
    a.add(A0, A0, T6);
    a.add(A0, A0, S1);
    a.ebreak();
    a.align(3);
    a.bind(cell);
    a.zeros(8);
    // Cross-check the AMO chain against the pure semantics: rd receives
    // the OLD value, amo_compute yields the NEW memory word.
    let splice = |cell: u64, word: u64| (cell & !0xffff_ffff) | (word & 0xffff_ffff);
    let t4 = 42u64; // old value seen by amoadd_d
    let cell1 = amo_compute(Op::AmoaddD, t4, 100);
    let t5 = riscv_isa::exec::load_extend(Op::Lw, cell1); // old word seen by amoadd_w
    let cell2 = splice(cell1, amo_compute(Op::AmoaddW, cell1, u64::MAX));
    let t6 = riscv_isa::exec::load_extend(Op::Lw, cell2); // old word seen by amoswap_w
    let cell3 = splice(cell2, amo_compute(Op::AmoswapW, cell2, 7));
    let expect = t4
        .wrapping_add(t5)
        .wrapping_add(t6)
        .wrapping_add(cell3);
    assert_eq!(conform(&a.assemble()), expect);
}

// ---------------------------------------------------------------------
// RV64F/D — SoftFloat vs host-float paths
// ---------------------------------------------------------------------

#[test]
fn rv64fd_arithmetic_agrees() {
    let mut a = Asm::new(BASE);
    a.li(T0, 3);
    a.fcvt_d_l(FT0, T0); // 3.0
    a.li(T0, 4);
    a.fcvt_d_l(FT1, T0); // 4.0
    a.fmul_d(FT2, FT0, FT0); // 9.0
    a.fmadd_d(FT2, FT1, FT1, FT2); // 9 + 16 = 25.0
    a.fsqrt_d(FT3, FT2); // 5.0
    a.fdiv_d(FT4, FT2, FT3); // 5.0
    a.fsub_d(FT5, FT4, FT3); // 0.0
    a.fadd_d(FT6, FT3, FT4); // 10.0
    a.fmin_d(FT7, FT3, FT6);
    a.fmax_d(FA0, FT3, FT6);
    a.feq_d(T1, FT3, FT4); // 1
    a.flt_d(T2, FT3, FT6); // 1
    a.fle_d(T3, FT6, FT3); // 0
    a.fcvt_l_d(T4, FA0); // 10
    a.fmv_x_d(T5, FT5); // bits of 0.0 = 0
    a.add(A0, T1, T2);
    a.add(A0, A0, T3);
    a.add(A0, A0, T4);
    a.add(A0, A0, T5);
    a.ebreak();
    assert_eq!(conform(&a.assemble()), 1 + 1 + 0 + 10 + 0);
}

// ---------------------------------------------------------------------
// Zba / Zbb
// ---------------------------------------------------------------------

#[test]
fn zba_zbb_bitmanip() {
    let mut a = Asm::new(BASE);
    a.li(T0, 0xf0f0_f0f0_1234_5678u64 as i64);
    a.li(T1, 0x1111);
    a.sh1add(T2, T0, T1);
    a.sh2add(T3, T0, T1);
    a.sh3add(T4, T0, T1);
    a.add_uw(T5, T0, T1);
    a.slli_uw(T6, T0, 4);
    a.andn(S0, T0, T1);
    a.orn(S1, T0, T1);
    a.xnor(S2, T0, T1);
    a.max(S3, T0, T1);
    a.min(S4, T0, T1);
    a.maxu(S5, T0, T1);
    a.minu(S6, T0, T1);
    a.rol(S7, T0, T1);
    a.ror(S8, T0, T1);
    a.rori(S9, T0, 17);
    a.clz(S10, T1);
    a.ctz(S11, T0);
    a.cpop(A1, T0);
    a.sext_b(A2, T0);
    a.sext_h(A3, T0);
    a.zext_h(A4, T0);
    a.orc_b(A5, T0);
    a.rev8(A6, T0);
    a.mv(A0, T2);
    for r in [
        T3, T4, T5, T6, S0, S1, S2, S3, S4, S5, S6, S7, S8, S9, S10, S11, A1, A2, A3, A4, A5, A6,
    ] {
        a.add(A0, A0, r);
    }
    a.ebreak();
    conform(&a.assemble());
}

// ---------------------------------------------------------------------
// RVC — compressed/uncompressed interleave
// ---------------------------------------------------------------------

#[test]
fn rvc_mixed_width_stream() {
    let mut a = Asm::new(BASE);
    a.c_li(T0, 31);
    a.c_addi(T0, -3); // 28
    a.c_nop();
    a.li(T1, 1000); // 32-bit sequence at a 2-byte-shifted offset
    a.c_mv(T2, T1);
    a.c_nop();
    a.add(A0, T0, T2); // 1028
    a.c_addi(A0, 4); // 1032
    a.ebreak();
    assert_eq!(conform(&a.assemble()), 1032);
}

// ---------------------------------------------------------------------
// Fast-path specializations: li/mv/ret/auipc shortcuts, x0 writes,
// block chaining
// ---------------------------------------------------------------------

#[test]
fn fastpath_li_constant_materialization() {
    // li expands differently per constant class (addi, lui+addiw,
    // recursive shift+add); each class exercises a distinct fast path.
    let consts: [i64; 8] = [
        0,
        2047,
        -2048,
        0x7fff_f000,
        i32::MIN as i64,
        0x0123_4567_89ab_cdef,
        i64::MIN,
        -1,
    ];
    let mut a = Asm::new(BASE);
    a.li(A0, 0);
    for (i, &c) in consts.iter().enumerate() {
        a.li(T0, c);
        // Mix position in so reordering bugs change the checksum.
        a.li(T1, i as i64 + 1);
        a.mul(T0, T0, T1);
        a.add(A0, A0, T0);
    }
    a.ebreak();
    let expect = consts
        .iter()
        .enumerate()
        .fold(0u64, |acc, (i, &c)| {
            acc.wrapping_add((c as u64).wrapping_mul(i as u64 + 1))
        });
    assert_eq!(conform(&a.assemble()), expect);
}

#[test]
fn fastpath_writes_to_x0_are_discarded() {
    let mut a = Asm::new(BASE);
    a.li(ZERO, 12345); // architectural nop
    a.addi(ZERO, ZERO, 77);
    a.add(ZERO, ZERO, ZERO);
    a.lui(ZERO, 0x7000_0000);
    let data = a.label();
    a.la(T0, data);
    a.ld(ZERO, 0, T0); // load to x0: access happens, write discarded
    a.auipc(ZERO, 0);
    a.mv(A0, ZERO); // must read 0
    a.addi(A0, A0, 9);
    a.ebreak();
    a.align(3);
    a.bind(data);
    a.data_u64(0xffff_ffff_ffff_ffff);
    assert_eq!(conform(&a.assemble()), 9);
}

#[test]
fn fastpath_block_chaining_tight_loops() {
    // Nested loops with shared blocks: the fast interpreter chains
    // translated blocks, so a stale-chain bug double-counts or skips.
    let mut a = Asm::new(BASE);
    a.li(A0, 0);
    a.li(T0, 0); // outer counter
    let outer = a.bound_label();
    a.li(T1, 0); // inner counter
    let inner = a.bound_label();
    a.add(A0, A0, T1);
    a.addi(T1, T1, 1);
    a.li(T2, 7);
    a.bltu(T1, T2, inner);
    a.addi(T0, T0, 1);
    a.li(T2, 11);
    a.bltu(T0, T2, outer);
    a.ebreak();
    assert_eq!(conform(&a.assemble()), 11 * (0..7u64).sum::<u64>());
}

#[test]
fn fastpath_ret_and_call_specialization() {
    // Alternating call/ret through two functions: exercises the
    // jalr-as-ret shortcut and return-address tracking.
    let mut a = Asm::new(BASE);
    let f1 = a.label();
    let f2 = a.label();
    let done = a.label();
    a.li(A0, 0);
    a.li(S0, 0);
    let loop_top = a.bound_label();
    a.call(f1);
    a.call(f2);
    a.addi(S0, S0, 1);
    a.li(T0, 5);
    a.bltu(S0, T0, loop_top);
    a.j(done);
    a.bind(f1);
    a.addi(A0, A0, 3);
    a.ret();
    a.bind(f2);
    a.addi(A0, A0, 4);
    a.ret();
    a.bind(done);
    a.ebreak();
    assert_eq!(conform(&a.assemble()), 5 * 7);
}

// ---------------------------------------------------------------------
// Pure tier: interpreters vs riscv_isa::exec in isolation
// ---------------------------------------------------------------------

#[test]
fn exec_int_compute_matrix() {
    type Emit = fn(&mut Asm, u8, u8, u8);
    let ops: [(Op, Emit); 28] = [
        (Op::Add, Asm::add),
        (Op::Sub, Asm::sub),
        (Op::Sll, Asm::sll),
        (Op::Slt, Asm::slt),
        (Op::Sltu, Asm::sltu),
        (Op::Xor, Asm::xor),
        (Op::Srl, Asm::srl),
        (Op::Sra, Asm::sra),
        (Op::Or, Asm::or),
        (Op::And, Asm::and),
        (Op::Addw, Asm::addw),
        (Op::Subw, Asm::subw),
        (Op::Sllw, Asm::sllw),
        (Op::Mul, Asm::mul),
        (Op::Mulh, Asm::mulh),
        (Op::Mulhu, Asm::mulhu),
        (Op::Mulhsu, Asm::mulhsu),
        (Op::Div, Asm::div),
        (Op::Divu, Asm::divu),
        (Op::Rem, Asm::rem),
        (Op::Remu, Asm::remu),
        (Op::Divw, Asm::divw),
        (Op::Remw, Asm::remw),
        (Op::Sh3add, Asm::sh3add),
        (Op::AddUw, Asm::add_uw),
        (Op::Andn, Asm::andn),
        (Op::Maxu, Asm::maxu),
        (Op::Ror, Asm::ror),
    ];
    // One program per op covering the whole operand matrix keeps the
    // test fast (4 engines x 28 programs, not x 28 x 64).
    for (op, emit) in ops {
        let mut a = Asm::new(BASE);
        let mut expect = 0u64;
        a.li(A0, 0);
        for &x in &OPERANDS {
            for &y in &OPERANDS {
                a.li(A1, x as i64);
                a.li(A2, y as i64);
                emit(&mut a, A3, A1, A2);
                a.add(A0, A0, A3);
                expect = expect.wrapping_add(
                    int_compute(op, x, y).unwrap_or_else(|| panic!("{op:?} not pure")),
                );
            }
        }
        a.ebreak();
        assert_eq!(conform(&a.assemble()), expect, "{op:?} matrix");
    }
}

#[test]
fn exec_branch_taken_matrix() {
    type EmitB = fn(&mut Asm, u8, u8, riscv_isa::asm::Label);
    let branches: [(Op, EmitB); 6] = [
        (Op::Beq, Asm::beq),
        (Op::Bne, Asm::bne),
        (Op::Blt, Asm::blt),
        (Op::Bge, Asm::bge),
        (Op::Bltu, Asm::bltu),
        (Op::Bgeu, Asm::bgeu),
    ];
    for (op, emit) in branches {
        let mut a = Asm::new(BASE);
        let mut expect = 0u64;
        a.li(A0, 0);
        for &x in &OPERANDS {
            for &y in &OPERANDS {
                a.li(A1, x as i64);
                a.li(A2, y as i64);
                let taken = a.label();
                let join = a.label();
                emit(&mut a, A1, A2, taken);
                a.j(join);
                a.bind(taken);
                a.addi(A0, A0, 1);
                a.bind(join);
                if branch_taken(op, x, y) {
                    expect += 1;
                }
            }
        }
        a.ebreak();
        assert_eq!(conform(&a.assemble()), expect, "{op:?} matrix");
    }
}

// ---------------------------------------------------------------------
// Trace-tier invalidation pins
//
// Each program is built so its *architectural result* changes if the
// superblock tier keeps a stale trace, chain link, or micro-TLB entry
// across the invalidation event. conform() then catches any divergence
// against the cache-free baselines, and a direct NemuTrace run asserts
// the invalidation machinery actually fired (rather than the test
// passing because nothing was ever cached).
// ---------------------------------------------------------------------

/// Sv39 leaf PTE: valid, readable, writable, executable, accessed,
/// dirty. A/D preset so the walker never writes PTEs mid-test.
const PTE_FLAGS: u64 = 0xcf;

#[test]
fn trace_pin_fence_i_invalidates_traces() {
    // A function is called, overwritten in memory with a template that
    // adds a different constant, then called twice more after fence.i.
    // A trace tier that keeps executing the memoized body returns 3
    // instead of 5.
    let mut a = Asm::new(BASE);
    let f = a.label();
    let template = a.label();
    let done = a.label();
    a.li(A0, 0);
    a.call(f); // +1
    a.la(T0, template);
    a.ld(T1, 0, T0); // addi a0,a0,2 ; ret  (8 bytes, both 32-bit)
    a.la(T2, f);
    a.sd(T1, 0, T2);
    a.fence_i();
    a.call(f); // +2
    a.call(f); // +2
    a.j(done);
    a.bind(f);
    a.addi(A0, A0, 1);
    a.ret();
    a.bind(template);
    a.addi(A0, A0, 2);
    a.ret();
    a.bind(done);
    a.ebreak();
    let p = a.assemble();
    assert_eq!(conform(&p), 5);
    let mut t = NemuTrace::new(&p);
    assert_eq!(t.run(FUEL).exit_code, Some(5));
    assert!(t.stats.flushes >= 1, "fence.i never flushed the trace tier");
}

#[test]
fn trace_pin_sfence_vma_invalidates_translations() {
    // Sv39 via mstatus.MPRV: a root table maps VA 0x4000_0000 to one
    // 1 GiB frame and identity-maps 0x8000_0000 so the page table
    // itself stays reachable. The PTE is rewritten in place to point at
    // a second frame, then sfence.vma. A stale load micro-TLB entry
    // returns 111 again instead of 222.
    let root: u64 = 0x8300_0000;
    let pte_lo = (0x8000_0000u64 >> 12) << 10 | PTE_FLAGS; // frame A
    let pte_hi = (0xc000_0000u64 >> 12) << 10 | PTE_FLAGS; // frame B
    let pte_id = (0x8000_0000u64 >> 12) << 10 | PTE_FLAGS; // identity
    let mut a = Asm::new(BASE);
    // Plant the two observable values (M-mode, still bare).
    a.li(T0, 111);
    a.li(T1, 0x8010_0000);
    a.sd(T0, 0, T1);
    a.li(T0, 222);
    a.li(T1, 0xc010_0000u64 as i64);
    a.sd(T0, 0, T1);
    // Root table: entry 1 (VA 0x4000_0000) -> frame A, entry 2 identity.
    a.li(T0, pte_lo as i64);
    a.li(T1, (root + 8) as i64);
    a.sd(T0, 0, T1);
    a.li(T0, pte_id as i64);
    a.li(T1, (root + 16) as i64);
    a.sd(T0, 0, T1);
    // satp = Sv39 @ root; mstatus.MPRV with MPP=S: data accesses now
    // translate while fetches stay M-mode bare.
    a.li(T0, ((8u64 << 60) | (root >> 12)) as i64);
    a.csrrw(ZERO, riscv_isa::csr::addr::SATP, T0);
    a.li(T0, ((1u64 << 17) | (1 << 11)) as i64);
    a.csrrs(ZERO, riscv_isa::csr::addr::MSTATUS, T0);
    a.li(S0, 0x4010_0000);
    a.ld(A0, 0, S0); // frame A: 111
    // Rewrite the PTE through the identity window, then fence.
    a.li(T0, pte_hi as i64);
    a.li(T1, (root + 8) as i64);
    a.sd(T0, 0, T1);
    a.sfence_vma(ZERO, ZERO);
    a.ld(A1, 0, S0); // frame B: 222
    a.add(A0, A0, A1);
    a.ebreak();
    let p = a.assemble();
    assert_eq!(conform(&p), 333);
    let mut t = NemuTrace::new(&p);
    assert_eq!(t.run(FUEL).exit_code, Some(333));
    assert!(t.stats.flushes >= 1, "sfence.vma never flushed");
}

#[test]
fn trace_pin_satp_rewrite_invalidates_micro_tlbs() {
    // Two root tables map the same VA to different frames; switching
    // satp between them (csrrw, no sfence) must drop the load micro-TLB
    // entry filled under the first root. This implementation treats a
    // satp write as a full address-space switch, like sfence.
    let r1: u64 = 0x8300_0000;
    let r2: u64 = 0x8300_1000;
    let pte_a = (0x8000_0000u64 >> 12) << 10 | PTE_FLAGS;
    let pte_b = (0xc000_0000u64 >> 12) << 10 | PTE_FLAGS;
    let mut a = Asm::new(BASE);
    a.li(T0, 111);
    a.li(T1, 0x8010_0000);
    a.sd(T0, 0, T1);
    a.li(T0, 222);
    a.li(T1, 0xc010_0000u64 as i64);
    a.sd(T0, 0, T1);
    a.li(T0, pte_a as i64);
    a.li(T1, (r1 + 8) as i64);
    a.sd(T0, 0, T1);
    a.li(T0, pte_b as i64);
    a.li(T1, (r2 + 8) as i64);
    a.sd(T0, 0, T1);
    a.li(T0, ((8u64 << 60) | (r1 >> 12)) as i64);
    a.csrrw(ZERO, riscv_isa::csr::addr::SATP, T0);
    a.li(T0, ((1u64 << 17) | (1 << 11)) as i64);
    a.csrrs(ZERO, riscv_isa::csr::addr::MSTATUS, T0);
    // Two loads per root: the first fills the load micro-TLB, the
    // second *hits* it, so a stale entry surviving the satp switch
    // changes the sum (555 instead of 666).
    a.li(S0, 0x4010_0000);
    a.ld(A0, 0, S0); // under r1: 111 (TLB fill)
    a.ld(A1, 0, S0); // under r1: 111 (TLB hit)
    a.li(T0, ((8u64 << 60) | (r2 >> 12)) as i64);
    a.csrrw(ZERO, riscv_isa::csr::addr::SATP, T0);
    a.ld(A2, 0, S0); // under r2: 222 (must re-walk, not hit stale)
    a.ld(A3, 0, S0); // under r2: 222 (TLB hit on the refilled entry)
    a.add(A0, A0, A1);
    a.add(A0, A0, A2);
    a.add(A0, A0, A3);
    a.ebreak();
    let p = a.assemble();
    assert_eq!(conform(&p), 666);
    let mut t = NemuTrace::new(&p);
    assert_eq!(t.run(FUEL).exit_code, Some(666));
    assert!(t.stats.flushes >= 1, "satp rewrite never flushed");
    assert!(t.stats.tlb_hits >= 1, "micro-TLBs never engaged");
}

#[test]
fn trace_pin_indirect_jump_retarget_repatches_chains() {
    // A loop calls through a function pointer that is retargeted midway.
    // The trace tier memoizes the jalr exit edge as a monomorphic inline
    // cache; a cache that skips re-validation keeps crediting the old
    // callee and returns 30 instead of 50.
    let mut a = Asm::new(BASE);
    let f1 = a.label();
    let f2 = a.label();
    let skip = a.label();
    let done = a.label();
    a.li(A0, 0);
    a.li(S0, 0);
    a.la(S1, f1);
    a.la(S2, f2);
    let loop_top = a.bound_label();
    a.jalr(RA, S1, 0);
    a.addi(S0, S0, 1);
    a.li(T0, 5);
    a.bne(S0, T0, skip);
    a.mv(S1, S2); // retarget the pointer after 5 calls
    a.bind(skip);
    a.li(T0, 10);
    a.bltu(S0, T0, loop_top);
    a.j(done);
    a.bind(f1);
    a.addi(A0, A0, 3);
    a.ret();
    a.bind(f2);
    a.addi(A0, A0, 7);
    a.ret();
    a.bind(done);
    a.ebreak();
    let p = a.assemble();
    assert_eq!(conform(&p), 5 * 3 + 5 * 7);
    let mut t = NemuTrace::new(&p);
    assert_eq!(t.run(FUEL).exit_code, Some(50));
    assert!(
        t.stats.links_patched >= 2,
        "indirect-edge inline cache never repatched: {:?}",
        t.stats
    );
}

// ---------------------------------------------------------------------
// RV64A — full AMO matrix and SC corner cases (the REF side of the
// multi-hart litmus oracle, pinned single-hart first)
// ---------------------------------------------------------------------

/// Encode an AMO/LR/SC instruction with explicit aq/rl bits (the asm
/// helpers only cover the relaxed forms).
fn amo32(funct5: u32, aq: bool, rl: bool, width_d: bool, rd: u8, rs2: u8, rs1: u8) -> u32 {
    funct5 << 27
        | (aq as u32) << 26
        | (rl as u32) << 25
        | (rs2 as u32) << 20
        | (rs1 as u32) << 15
        | (if width_d { 0b011 } else { 0b010 }) << 12
        | (rd as u32) << 7
        | 0x2f
}

/// amoswap/amoadd/amoand/amoor/amomin/amomax × {w, d} × {aq, rl}
/// combinations, all personalities against the pure `amo_compute`
/// semantics: `rd` receives the old (width-extended) value, memory the
/// computed word.
#[test]
fn rv64a_amo_matrix_all_widths_aqrl() {
    const OPS: &[(u32, Op, Op)] = &[
        (0b00001, Op::AmoswapW, Op::AmoswapD),
        (0b00000, Op::AmoaddW, Op::AmoaddD),
        (0b01100, Op::AmoandW, Op::AmoandD),
        (0b01000, Op::AmoorW, Op::AmoorD),
        (0b10000, Op::AmominW, Op::AmominD),
        (0b10100, Op::AmomaxW, Op::AmomaxD),
    ];
    let splice = |cell: u64, word: u64| (cell & !0xffff_ffff) | (word & 0xffff_ffff);
    let mut a = Asm::new(BASE);
    let cell = a.label();
    a.la(S0, cell);
    let init = 0xfedc_ba98_7654_3210u64;
    a.li(T0, init as i64);
    a.sd(T0, 0, S0);
    a.li(A0, 0);
    let mut model_cell = init;
    let mut model_a0 = 0u64;
    let mut case = 0u64;
    for &(funct5, op_w, op_d) in OPS {
        for width_d in [false, true] {
            for (aq, rl) in [(false, false), (true, false), (false, true), (true, true)] {
                // Deterministic source value with sign-bit coverage in
                // both widths.
                case += 1;
                let src = 0x9e37_79b9_7f4a_7c15u64
                    .wrapping_mul(case)
                    .rotate_left((case % 61) as u32);
                a.li(T3, src as i64);
                a.raw32(amo32(funct5, aq, rl, width_d, T4, T3, S0));
                a.add(A0, A0, T4);
                let (old_rd, new_cell) = if width_d {
                    (model_cell, amo_compute(op_d, model_cell, src))
                } else {
                    (
                        riscv_isa::exec::load_extend(Op::Lw, model_cell),
                        splice(model_cell, amo_compute(op_w, model_cell, src)),
                    )
                };
                model_a0 = model_a0.wrapping_add(old_rd);
                model_cell = new_cell;
            }
        }
    }
    a.ld(S1, 0, S0);
    a.add(A0, A0, S1);
    a.ebreak();
    a.align(3);
    a.bind(cell);
    a.zeros(8);
    assert_eq!(conform(&a.assemble()), model_a0.wrapping_add(model_cell));
}

// ---------------------------------------------------------------------
// Checkpoint restore (paper Fig. 9): the ISA-level restore loader is
// interpreter-agnostic
// ---------------------------------------------------------------------

/// A checkpoint restored through `Checkpoint::restore_loader` — base-ISA
/// instructions only, no debug mode — must behave identically on every
/// registered personality: each one boots the loader over the checkpoint
/// image, lands on the checkpointed pc, and after one further profiling
/// interval of execution agrees on (pc, gprs, fprs, instructions) both
/// mutually and with a raw NEMU hart that ran the workload from the
/// beginning. This pins the whole sampling premise: a checkpoint is the
/// program, not an artifact of the engine that produced it.
#[test]
fn checkpoint_restore_conforms_across_personalities() {
    use nemu::hart::{self, Hart};

    let interval_len: u64 = 5_000;
    let program = workloads::workload("mcf", workloads::Scale::Test).program;
    let set =
        checkpoint::generate_checkpoints_with_ref("nemu-trace", &program, interval_len, 3, 50_000_000);
    // A mid-run checkpoint: live GPRs/FPRs/CSRs, and at least one full
    // interval of execution still ahead of it.
    let c = set
        .checkpoints
        .iter()
        .filter(|c| (c.interval as u64) + 1 < set.total_intervals)
        .max_by_key(|c| c.interval)
        .expect("a mid-run checkpoint exists");
    assert!(c.instret > 0, "checkpoint must not be the reset state");

    // Reference continuation: a raw hart stepped from program start for
    // instret + interval_len instructions.
    let mut ref_mem = riscv_isa::mem::SparseMemory::new();
    program.load_into(&mut ref_mem);
    let mut ref_hart = Hart::new(program.entry, 0);
    while ref_hart.instret < c.instret + interval_len && !ref_hart.is_halted() {
        hart::step(&mut ref_hart, &mut ref_mem);
    }
    let ref_executed = ref_hart.instret - c.instret;

    let loader = c.restore_loader();
    for pers in PERSONALITIES {
        let mut e = (pers.build)(&loader);
        // The restored address space: the checkpoint image with the
        // loader (code + fpr staging table) planted beside it.
        let mut mem = c.memory.clone();
        loader.load_into(&mut mem);
        *e.mem_mut() = mem;
        // Phase 1: the loader rebuilds the state and mrets to the pc.
        let mut fuel = 100_000u64;
        while e.hart().state.pc != c.state.pc {
            assert!(fuel > 0, "{}: loader never reached the pc", pers.name);
            assert!(!e.hart().is_halted(), "{}: loader halted early", pers.name);
            e.step_one();
            fuel -= 1;
        }
        assert_eq!(e.hart().state.gpr, c.state.gpr, "{}: restored gprs", pers.name);
        assert_eq!(e.hart().state.fpr, c.state.fpr, "{}: restored fprs", pers.name);
        // Phase 2: one profiling interval of real workload execution.
        let base = e.hart().instret;
        while e.hart().instret - base < interval_len && !e.hart().is_halted() {
            e.step_one();
        }
        assert_eq!(
            e.hart().instret - base,
            ref_executed,
            "{}: executed a different interval",
            pers.name
        );
        assert_eq!(e.hart().state.pc, ref_hart.state.pc, "{}: pc after interval", pers.name);
        assert_eq!(e.hart().state.gpr, ref_hart.state.gpr, "{}: gprs after interval", pers.name);
        assert_eq!(e.hart().state.fpr, ref_hart.state.fpr, "{}: fprs after interval", pers.name);
    }
}

/// SC without a prior LR fails; SC to a different reservation granule
/// than the LR fails and leaves memory intact; a failed SC consumes the
/// reservation, so the next LR/SC pair (with aq/rl set) succeeds.
#[test]
fn rv64a_sc_corner_cases() {
    let mut a = Asm::new(BASE);
    let cell_a = a.label();
    let cell_b = a.label();
    a.la(S0, cell_a);
    a.la(S1, cell_b);
    a.li(T0, 0x11);
    a.sd(T0, 0, S0);
    a.li(T0, 0x22);
    a.sd(T0, 0, S1);
    a.li(T1, 0x99);
    // SC with no reservation at all: both widths fail.
    a.sc_d(T2, T1, S0); // t2 = 1
    a.sc_w(T3, T1, S0); // t3 = 1
    // LR cell A, SC cell B (a different 64-byte granule): fails, and
    // cell B keeps its value.
    a.lr_d(T4, S0); // t4 = 0x11
    a.sc_d(T5, T1, S1); // t5 = 1
    // The failed SC consumed the reservation; a fresh LR.aq/SC.rl pair
    // (raw-encoded — the helpers are relaxed-only) succeeds.
    a.raw32(amo32(0b00010, true, false, true, T6, ZERO, S0)); // lr.d.aq t6 = 0x11
    a.addi(T6, T6, 1);
    a.raw32(amo32(0b00011, false, true, true, S2, T6, S0)); // sc.d.rl s2 = 0
    a.ld(S3, 0, S0); // 0x12
    a.ld(S4, 0, S1); // 0x22 (unharmed by the wrong-granule SC)
    a.add(A0, T2, T3);
    a.add(A0, A0, T5);
    a.slli(S2, S2, 4); // any successful-SC drift lands loudly in a0
    a.add(A0, A0, S2);
    a.add(A0, A0, T4);
    a.add(A0, A0, S3);
    a.add(A0, A0, S4);
    a.ebreak();
    a.align(3);
    a.bind(cell_a);
    a.zeros(64);
    a.bind(cell_b);
    a.zeros(8);
    assert_eq!(conform(&a.assemble()), 1 + 1 + 1 + 0x11 + 0x12 + 0x22);
}
